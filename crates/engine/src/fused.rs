//! The fused zero-copy scan pipeline: batch-at-a-time
//! filter → project → aggregate with no n-sized intermediates.
//!
//! The materializing pipeline (kept as `run_q1_materializing` /
//! `run_q6_materializing` for reference and differential testing) walks
//! the table three times before the §III kernel ever runs: it builds an
//! n-sized selection vector, gathers every projected column into fresh
//! vectors, and only then aggregates. This module instead walks the table
//! once in fixed cache-resident batches ([`FUSED_BATCH_ROWS`] rows): each
//! batch is filtered into a small reused selection vector, projected
//! through compiled expressions into reused scratch registers
//! ([`crate::expr`]), and deposited straight into the per-group
//! [`GroupedSums`] states — the MonetDB/X100 vectorized execution model.
//! Peak intermediate footprint is O(batch + groups), independent of n.
//!
//! **Why fusion preserves bit-identity** (paper footnote 3, extended to
//! batched evaluation): the per-row expression dag is evaluated with the
//! identical operations in the identical row order — batching only changes
//! *when* rows are processed, never *what* is computed or in which order
//! per accumulator slot. Every `GroupedSums` slot therefore receives the
//! same value sequence as in the materializing pipeline, so every backend
//! — including order-sensitive plain doubles — finalizes to the same bits
//! as serial materializing execution. The single-group fast path may swap
//! per-row deposits for the vectorized block kernel (`simd::add_slice`),
//! which §III-D proves bit-transparent.
//!
//! **Parallelism.** With `threads > 1` the scan runs morsel-driven on the
//! work-stealing pool: each morsel ([`ExecOptions::morsel_rows`] rows)
//! processes its batches into private states, merged along the
//! deterministic split tree. Exact state merging makes the repro backends
//! bit-identical to serial execution at any thread count. Plain doubles
//! cannot merge exactly — the *only* way to parallelize them without
//! changing the answer would be to materialize or sort — so the fused
//! executor deliberately runs [`SumBackend::Double`] serially at any
//! requested thread count: the engine's answers are then independent of
//! `threads` for every backend, which the proptests assert.
//! [`SumBackend::SortedDouble`] is inherently materializing (it sorts the
//! projected values) and is routed to the materializing pipeline by the
//! query entry points, never reaching this executor.

use crate::column::Table;
use crate::expr::{BoundExpr, CompiledExpr, EvalScratch, Expr};
use crate::q1::PhaseTiming;
use crate::sum_op::{GroupedSums, OverflowError, SumBackend, SCAN_MORSEL_ROWS};
use rayon::prelude::*;
use std::time::Instant;

/// Rows per scan batch. 4096 rows keep one selection vector, one group-id
/// vector and a handful of f64 registers (~32 KiB each) L2-resident while
/// amortizing per-batch dispatch — the X100 sweet spot.
pub const FUSED_BATCH_ROWS: usize = 4096;

/// A conjunct of the scan filter, evaluated batch-at-a-time against a
/// typed column. Range bounds follow the queries' SQL semantics.
#[derive(Clone, Copy, Debug)]
pub enum Pred {
    /// `lo <= col < hi` on an `I32` column.
    I32Range { col: &'static str, lo: i32, hi: i32 },
    /// `col <= max` on an `I32` column.
    I32Le { col: &'static str, max: i32 },
    /// `lo <= col <= hi` (inclusive) on an `F64` column.
    F64Range { col: &'static str, lo: f64, hi: f64 },
    /// `col < max` on an `F64` column.
    F64Lt { col: &'static str, max: f64 },
}

/// GROUP BY over two dictionary-encoded `U8` columns, mapped to a dense
/// group id by `encode` (Q1's `(l_returnflag, l_linestatus)` pair).
#[derive(Clone, Copy)]
pub struct GroupSpec {
    pub a: &'static str,
    pub b: &'static str,
    pub encode: fn(u8, u8) -> u32,
}

/// A fused scan-aggregate query: conjunctive filter, one SUM per
/// aggregate expression, optional dense grouping.
pub struct FusedQuery {
    pub filter: Vec<Pred>,
    pub aggregates: Vec<Expr>,
    /// `None` — a single un-grouped accumulator (group id 0).
    pub group_by: Option<GroupSpec>,
    /// Number of dense group ids `encode` can produce (1 if un-grouped).
    pub groups: usize,
}

/// Execution options of the fused pipeline.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Worker budget: 1 runs serial, >1 runs morsel-parallel on the
    /// global pool. Results are bit-identical either way (see module doc).
    pub threads: usize,
    /// Rows per batch (default [`FUSED_BATCH_ROWS`]; tests shrink it to
    /// force many batches on small inputs).
    pub batch_rows: usize,
    /// Rows per parallel morsel (default [`SCAN_MORSEL_ROWS`]; tests
    /// shrink it to force real splits on small inputs).
    pub morsel_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            batch_rows: FUSED_BATCH_ROWS,
            morsel_rows: SCAN_MORSEL_ROWS,
        }
    }
}

impl ExecOptions {
    /// Serial execution with default batch sizing.
    pub fn serial() -> Self {
        ExecOptions::default()
    }

    /// One worker per pool thread with default batch/morsel sizing.
    pub fn parallel() -> Self {
        ExecOptions {
            threads: rayon::current_num_threads().max(1),
            ..ExecOptions::default()
        }
    }
}

/// Result of a fused scan: per-aggregate per-group sums, group counts,
/// and the CPU-time phase split (scan vs aggregation; summed across
/// workers on the parallel path, like the paper's CPU-time accounting).
#[derive(Debug)]
pub struct FusedRun {
    /// `sums[a][g]` — SUM of aggregate `a` over group `g`.
    pub sums: Vec<Vec<f64>>,
    /// `counts[g]` — COUNT(*) per group.
    pub counts: Vec<u64>,
    pub timing: PhaseTiming,
}

/// A filter conjunct bound to its column storage.
enum BoundPred<'t> {
    I32Range { col: &'t [i32], lo: i32, hi: i32 },
    I32Le { col: &'t [i32], max: i32 },
    F64Range { col: &'t [f64], lo: f64, hi: f64 },
    F64Lt { col: &'t [f64], max: f64 },
}

/// Branchless selection-vector build: writes every candidate row id and
/// advances the length by the predicate bit (the X100 idiom — no
/// per-row branch misprediction at mid selectivities).
#[inline]
fn fill_with(lo: usize, hi: usize, sel: &mut Vec<u32>, keep: impl Fn(usize) -> bool) {
    sel.clear();
    sel.resize(hi - lo, 0);
    let mut k = 0usize;
    for row in lo..hi {
        sel[k] = row as u32;
        k += keep(row) as usize;
    }
    sel.truncate(k);
}

/// Branchless in-place compaction of an existing selection vector.
#[inline]
fn refine_with(sel: &mut Vec<u32>, keep: impl Fn(usize) -> bool) {
    let mut k = 0usize;
    for i in 0..sel.len() {
        let row = sel[i];
        sel[k] = row;
        k += keep(row as usize) as usize;
    }
    sel.truncate(k);
}

impl BoundPred<'_> {
    /// Single-row form of the predicate — the differential-testing
    /// reference for the branchless batch loops below.
    #[cfg(test)]
    fn test(&self, row: usize) -> bool {
        match *self {
            BoundPred::I32Range { col, lo, hi } => (lo..hi).contains(&col[row]),
            BoundPred::I32Le { col, max } => col[row] <= max,
            BoundPred::F64Range { col, lo, hi } => (lo..=hi).contains(&col[row]),
            BoundPred::F64Lt { col, max } => col[row] < max,
        }
    }

    /// First conjunct: fills `sel` with the matching row ids of the batch.
    /// The match hoists the predicate dispatch out of the row loop, and
    /// non-short-circuiting `&` keeps the comparisons branch-free.
    fn fill(&self, blo: usize, bhi: usize, sel: &mut Vec<u32>) {
        match *self {
            BoundPred::I32Range { col, lo, hi } => {
                fill_with(blo, bhi, sel, |r| (col[r] >= lo) & (col[r] < hi))
            }
            BoundPred::I32Le { col, max } => fill_with(blo, bhi, sel, |r| col[r] <= max),
            BoundPred::F64Range { col, lo, hi } => {
                fill_with(blo, bhi, sel, |r| (col[r] >= lo) & (col[r] <= hi))
            }
            BoundPred::F64Lt { col, max } => fill_with(blo, bhi, sel, |r| col[r] < max),
        }
    }

    /// Later conjuncts: compacts `sel` in place (order-preserving).
    fn refine(&self, sel: &mut Vec<u32>) {
        match *self {
            BoundPred::I32Range { col, lo, hi } => {
                refine_with(sel, |r| (col[r] >= lo) & (col[r] < hi))
            }
            BoundPred::I32Le { col, max } => refine_with(sel, |r| col[r] <= max),
            BoundPred::F64Range { col, lo, hi } => {
                refine_with(sel, |r| (col[r] >= lo) & (col[r] <= hi))
            }
            BoundPred::F64Lt { col, max } => refine_with(sel, |r| col[r] < max),
        }
    }
}

fn bind_pred<'t>(p: &Pred, table: &'t Table) -> BoundPred<'t> {
    let col = |name| {
        table
            .column(name)
            .expect("fused query references a missing column")
    };
    match *p {
        Pred::I32Range { col: c, lo, hi } => BoundPred::I32Range {
            col: col(c).as_i32(),
            lo,
            hi,
        },
        Pred::I32Le { col: c, max } => BoundPred::I32Le {
            col: col(c).as_i32(),
            max,
        },
        Pred::F64Range { col: c, lo, hi } => BoundPred::F64Range {
            col: col(c).as_f64(),
            lo,
            hi,
        },
        Pred::F64Lt { col: c, max } => BoundPred::F64Lt {
            col: col(c).as_f64(),
            max,
        },
    }
}

/// Executes a fused query over a table.
///
/// Panics if the query references a column the table lacks (queries are
/// engine-internal; the materializing [`Expr::eval`] keeps the fallible
/// API). Returns [`OverflowError`] exactly when the materializing
/// pipeline would.
pub fn run_fused(
    table: &Table,
    query: &FusedQuery,
    backend: SumBackend,
    opts: &ExecOptions,
) -> Result<FusedRun, OverflowError> {
    assert!(
        backend != SumBackend::SortedDouble,
        "SortedDouble is inherently materializing; route it to the materializing pipeline"
    );
    assert!(opts.batch_rows > 0 && opts.morsel_rows > 0);
    let compiled: Vec<CompiledExpr> = query.aggregates.iter().map(|e| e.compile()).collect();
    let rows = table.rows();

    // Plain doubles cannot merge exactly: parallel execution would change
    // the answer, so they always scan serially (module doc).
    let threads = if backend.merges_exactly() {
        opts.threads
    } else {
        1
    };

    let partial = if threads <= 1 || rows <= opts.morsel_rows {
        scan_range(table, query, &compiled, backend, opts, 0, rows)?
    } else {
        let morsels = rows.div_ceil(opts.morsel_rows);
        (0..morsels)
            .into_par_iter()
            .with_min_len(1)
            .map(|m| {
                let lo = m * opts.morsel_rows;
                let hi = (lo + opts.morsel_rows).min(rows);
                scan_range(table, query, &compiled, backend, opts, lo, hi).map(Some)
            })
            .reduce(
                || Ok(None),
                |a: Result<Option<Partial>, OverflowError>, b| match (a?, b?) {
                    (Some(mut x), Some(y)) => {
                        x.merge(y)?;
                        Ok(Some(x))
                    }
                    (x, y) => Ok(x.or(y)),
                },
            )?
            .expect("at least one morsel")
    };

    let t0 = Instant::now();
    let sums = partial
        .sinks
        .into_iter()
        .map(GroupedSums::finalize)
        .collect();
    let mut timing = partial.timing;
    timing.other += t0.elapsed();
    Ok(FusedRun {
        sums,
        counts: partial.counts,
        timing,
    })
}

/// Per-morsel (or whole-input) accumulation state.
struct Partial {
    sinks: Vec<GroupedSums>,
    counts: Vec<u64>,
    timing: PhaseTiming,
}

impl Partial {
    fn merge(&mut self, other: Partial) -> Result<(), OverflowError> {
        for (a, b) in self.sinks.iter_mut().zip(other.sinks) {
            a.merge(b)?;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
        self.timing.scan += other.timing.scan;
        self.timing.aggregation += other.timing.aggregation;
        self.timing.other += other.timing.other;
        Ok(())
    }
}

/// Scans `[lo, hi)` batch-at-a-time into fresh per-call states. All
/// scratch is batch-sized and reused across the range's batches.
fn scan_range(
    table: &Table,
    query: &FusedQuery,
    compiled: &[CompiledExpr],
    backend: SumBackend,
    opts: &ExecOptions,
    lo: usize,
    hi: usize,
) -> Result<Partial, OverflowError> {
    let preds: Vec<BoundPred> = query.filter.iter().map(|p| bind_pred(p, table)).collect();
    let bound: Vec<BoundExpr> = compiled
        .iter()
        .map(|c| {
            c.bind(table)
                .expect("fused query references a missing column")
        })
        .collect();
    let group_cols = query.group_by.as_ref().map(|g| {
        (
            table
                .column(g.a)
                .expect("fused query references a missing column")
                .as_u8(),
            table
                .column(g.b)
                .expect("fused query references a missing column")
                .as_u8(),
            g.encode,
        )
    });

    let mut sinks: Vec<GroupedSums> = (0..query.aggregates.len())
        .map(|_| GroupedSums::new(backend, query.groups))
        .collect();
    let mut counts = vec![0u64; query.groups];
    let mut timing = PhaseTiming::default();

    let mut sel: Vec<u32> = Vec::with_capacity(opts.batch_rows);
    let mut gids: Vec<u32> = Vec::with_capacity(opts.batch_rows);
    let mut out: Vec<f64> = vec![0.0; opts.batch_rows];
    let mut scratch = EvalScratch::new();

    let mut blo = lo;
    while blo < hi {
        let bhi = (blo + opts.batch_rows).min(hi);
        let t0 = Instant::now();

        // Filter: selection vector for this batch only.
        sel.clear();
        match preds.split_first() {
            None => sel.extend(blo as u32..bhi as u32),
            Some((first, rest)) => {
                first.fill(blo, bhi, &mut sel);
                for p in rest {
                    p.refine(&mut sel);
                }
            }
        }

        // Group ids + COUNT(*).
        if let Some((a, b, encode)) = group_cols {
            gids.clear();
            for &row in &sel {
                let g = encode(a[row as usize], b[row as usize]);
                debug_assert!((g as usize) < query.groups);
                gids.push(g);
                counts[g as usize] += 1;
            }
        } else {
            counts[0] += sel.len() as u64;
        }
        timing.scan += t0.elapsed();

        // Project + aggregate, one expression at a time.
        for (expr, sink) in bound.iter().zip(sinks.iter_mut()) {
            let t1 = Instant::now();
            expr.eval_into(&sel, &mut scratch, &mut out[..sel.len()]);
            timing.scan += t1.elapsed();
            let t2 = Instant::now();
            if group_cols.is_some() {
                sink.update(&gids, &out[..sel.len()])?;
            } else {
                sink.update_single(&out[..sel.len()])?;
            }
            timing.aggregation += t2.elapsed();
        }
        blo = bhi;
    }

    Ok(Partial {
        sinks,
        counts,
        timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn encode_low_bit(a: u8, b: u8) -> u32 {
        ((a & 1) * 2 + (b & 1)) as u32
    }

    fn sample_table(n: usize) -> Table {
        let mut t = Table::new("t");
        t.add_column(
            "x",
            Column::f64(
                (0..n)
                    .map(|i| (i % 97) as f64 * 0.25 - 8.0)
                    .collect::<Vec<_>>(),
            ),
        )
        .unwrap();
        t.add_column(
            "y",
            Column::f64((0..n).map(|i| (i % 13) as f64 * 0.01).collect::<Vec<_>>()),
        )
        .unwrap();
        t.add_column(
            "k",
            Column::i32((0..n).map(|i| (i % 31) as i32).collect::<Vec<_>>()),
        )
        .unwrap();
        t.add_column(
            "ga",
            Column::u8((0..n).map(|i| (i % 3) as u8).collect::<Vec<_>>()),
        )
        .unwrap();
        t.add_column(
            "gb",
            Column::u8((0..n).map(|i| (i % 5) as u8).collect::<Vec<_>>()),
        )
        .unwrap();
        t
    }

    fn sample_query() -> FusedQuery {
        FusedQuery {
            filter: vec![
                Pred::I32Range {
                    col: "k",
                    lo: 3,
                    hi: 27,
                },
                Pred::F64Lt {
                    col: "x",
                    max: 11.0,
                },
            ],
            aggregates: vec![
                Expr::col("x").mul(Expr::lit(1.0).sub(Expr::col("y"))),
                Expr::col("x"),
            ],
            group_by: Some(GroupSpec {
                a: "ga",
                b: "gb",
                encode: encode_low_bit,
            }),
            groups: 4,
        }
    }

    /// Materializing reference: n-sized selection vector, Expr::eval,
    /// sum_grouped — the pipeline fusion must be bit-identical to.
    fn reference(
        table: &Table,
        query: &FusedQuery,
        backend: SumBackend,
    ) -> (Vec<Vec<f64>>, Vec<u64>) {
        let rows = table.rows();
        let preds: Vec<BoundPred> = query.filter.iter().map(|p| bind_pred(p, table)).collect();
        let sel: Vec<u32> = (0..rows as u32)
            .filter(|&i| preds.iter().all(|p| p.test(i as usize)))
            .collect();
        let gids: Vec<u32> = match &query.group_by {
            Some(g) => {
                let a = table.column(g.a).unwrap().as_u8();
                let b = table.column(g.b).unwrap().as_u8();
                sel.iter()
                    .map(|&i| (g.encode)(a[i as usize], b[i as usize]))
                    .collect()
            }
            None => vec![0; sel.len()],
        };
        let sums = query
            .aggregates
            .iter()
            .map(|e| {
                let vals = e.eval(table, &sel).unwrap();
                crate::sum_op::sum_grouped(backend, &gids, &vals, query.groups).unwrap()
            })
            .collect();
        (sums, crate::sum_op::count_grouped(&gids, query.groups))
    }

    #[test]
    fn fused_matches_materializing_bitwise_across_batch_and_thread_shapes() {
        let table = sample_table(10_000);
        let query = sample_query();
        for backend in [
            SumBackend::Double,
            SumBackend::ReproUnbuffered,
            SumBackend::ReproBuffered { buffer_size: 128 },
            SumBackend::Rsum { levels: 2 },
            SumBackend::RsumBuffered {
                levels: 3,
                buffer_size: 64,
            },
        ] {
            let (ref_sums, ref_counts) = reference(&table, &query, backend);
            for (threads, batch_rows, morsel_rows) in [
                (1, 64, 1 << 16),
                (1, 4096, 1 << 16),
                (2, 128, 512),
                (8, 33, 256),
            ] {
                let opts = ExecOptions {
                    threads,
                    batch_rows,
                    morsel_rows,
                };
                let run = run_fused(&table, &query, backend, &opts).unwrap();
                assert_eq!(run.counts, ref_counts, "{backend:?} {opts:?}");
                for (a, (rs, fs)) in ref_sums.iter().zip(run.sums.iter()).enumerate() {
                    for g in 0..query.groups {
                        assert_eq!(
                            rs[g].to_bits(),
                            fs[g].to_bits(),
                            "{backend:?} {opts:?} agg {a} group {g}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ungrouped_single_sink_path() {
        let table = sample_table(5_000);
        let query = FusedQuery {
            filter: vec![Pred::F64Range {
                col: "y",
                lo: 0.02,
                hi: 0.09,
            }],
            aggregates: vec![Expr::col("x").mul(Expr::col("y"))],
            group_by: None,
            groups: 1,
        };
        for backend in [
            SumBackend::Double,
            SumBackend::ReproUnbuffered,
            SumBackend::ReproBuffered { buffer_size: 256 },
        ] {
            let (ref_sums, ref_counts) = reference(&table, &query, backend);
            let run = run_fused(&table, &query, backend, &ExecOptions::serial()).unwrap();
            assert_eq!(run.counts, ref_counts);
            assert_eq!(
                run.sums[0][0].to_bits(),
                ref_sums[0][0].to_bits(),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn empty_table_and_empty_filter() {
        let table = sample_table(0);
        let query = sample_query();
        let run = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        assert_eq!(run.counts, vec![0; 4]);
        assert!(run.sums.iter().all(|s| s.iter().all(|&v| v == 0.0)));

        // No filter at all: every row selected.
        let table = sample_table(100);
        let all = FusedQuery {
            filter: vec![],
            aggregates: vec![Expr::col("x")],
            group_by: None,
            groups: 1,
        };
        let run = run_fused(
            &table,
            &all,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        assert_eq!(run.counts[0], 100);
    }

    #[test]
    fn double_overflow_is_detected_in_fused_scan() {
        let mut t = Table::new("o");
        t.add_column("x", Column::f64(vec![f64::MAX, f64::MAX]))
            .unwrap();
        let q = FusedQuery {
            filter: vec![],
            aggregates: vec![Expr::col("x")],
            group_by: None,
            groups: 1,
        };
        assert_eq!(
            run_fused(&t, &q, SumBackend::Double, &ExecOptions::serial()).unwrap_err(),
            OverflowError
        );
    }
}
