//! The fused zero-copy scan pipeline: batch-at-a-time
//! filter → project → aggregate with no n-sized intermediates.
//!
//! The materializing pipeline (kept as `run_q1_materializing` /
//! `run_q6_materializing` for reference and differential testing) walks
//! the table three times before the §III kernel ever runs: it builds an
//! n-sized selection vector, gathers every projected column into fresh
//! vectors, and only then aggregates. This module instead walks the table
//! once in fixed cache-resident batches ([`FUSED_BATCH_ROWS`] rows): each
//! batch is filtered into a small reused selection vector, projected
//! through compiled expressions into reused scratch registers
//! ([`crate::expr`]), and deposited straight into the per-group
//! [`GroupedStates`] — the MonetDB/X100 vectorized execution model.
//! Peak intermediate footprint is O(batch + groups), independent of n.
//!
//! This is the *physical* executor the plan layer ([`crate::plan`])
//! lowers onto: a [`FusedQuery`] names the filter conjuncts, the SUM /
//! MIN / MAX input expressions (one per-group state array each — COUNT is
//! always maintained, and AVG is pure plan-level finalization over a SUM
//! state), and the [`GroupKey`] grouping mode.
//!
//! **Filters** are conjunctions of compiled [`BoolExpr`] predicates
//! ([`crate::expr`]): the first conjunct fills the batch's selection
//! vector branchlessly, later conjuncts refine it in place. Simple
//! `col ⟨cmp⟩ const` shapes run typed fast loops; arbitrary compositions
//! (`OR`, `NOT`, arithmetic comparisons) run the mask program — both
//! produce the identical selection in the identical row order.
//!
//! **Group keys** come in four shapes:
//!
//! * [`GroupKey::None`] — a single accumulator (group id 0), taking the
//!   vectorized single-group fast paths;
//! * [`GroupKey::Dense`] — two dictionary-encoded `U8` columns mapped to
//!   a dense id by an `encode` fn (Q1's flag/status pair), direct array
//!   indexing as MonetDB does for small group counts;
//! * [`GroupKey::Hash`] — arbitrary-cardinality `I32`/`U32`/`U8` keys.
//!   Each scan range owns an [`AggHashTable`] mapping key → dense local
//!   group id; whole batches of keys are resolved through
//!   [`AggHashTable::upsert_batch`] (the §IV batched probe), unseen keys
//!   are appended to a slot→key list in first-seen row order, and the
//!   per-group state arrays grow on demand. Parallel partials merge *by
//!   key*: the reduction walks the other side's slot→key list and folds
//!   each slot into the local slot of the same key.
//! * [`GroupKey::HashPair`] — two `U8` columns packed into one `u32` key
//!   (`(a << 8) | b`) through the same hash arm. This is how a SQL
//!   `GROUP BY flag, status` over dictionary-encoded byte columns runs
//!   without a precomputed dense `encode` fn: only observed pairs
//!   materialize group state, and the packed key sorts output rows in
//!   `(a, b)` lexicographic order.
//!
//! **Why fusion preserves bit-identity** (paper footnote 3, extended to
//! batched evaluation): the per-row expression dag is evaluated with the
//! identical operations in the identical row order — batching only changes
//! *when* rows are processed, never *what* is computed or in which order
//! per accumulator slot. Every SUM slot therefore receives the
//! same value sequence as in the materializing pipeline, so every backend
//! — including order-sensitive plain doubles — finalizes to the same bits
//! as serial materializing execution. The single-group fast path may swap
//! per-row deposits for the vectorized block kernel (`simd::add_slice`),
//! which §III-D proves bit-transparent.
//!
//! **Algebraic aggregation over encoded inputs.** When a SUM / MIN / MAX
//! input is a *bare* encoded column (`Rle`, `Dict` or `Dict16` over plain
//! numeric storage), the executor skips the per-row gather entirely: each
//! selected RLE run span deposits its value once with its repetition
//! count, and dictionary columns accumulate per-`(group, code)` row
//! counts across the batch, flushing one deposit per touched dictionary
//! entry at batch end. The `k·v` deposit
//! ([`crate::GroupedSums::update_scaled`] →
//! [`rfa_core::ReproSum::add_scaled`]) folds into the reproducible
//! accumulators bit-identically to `k` per-row additions, and those
//! states are pure functions of the input *multiset*, so neither the
//! collapse nor the flush order can change any output bit (DESIGN.md
//! §26). Plain doubles are order-sensitive with no algebraic shortcut —
//! their SUMs keep the per-row path ([`SumBackend::merges_exactly`] gates
//! the fast path), while MIN / MAX comparison folds, being idempotent and
//! order-insensitive, run once per run / per code on every backend.
//! Dictionary batches only go algebraic when the histogram pays: a
//! dictionary larger than half the batch's selection (or a
//! `groups × entries` table past `ALG_HIST_MAX`) would flush about one
//! deposit per row, so those batches keep per-row deposits — the two
//! paths are bit-identical, so mixing them per batch is free.
//!
//! **Parallelism.** With `threads > 1` the scan runs morsel-driven on the
//! work-stealing pool: each morsel ([`ExecOptions::morsel_rows`] rows)
//! processes its batches into private states, merged along the
//! deterministic split tree. Exact state merging makes the repro backends
//! bit-identical to serial execution at any thread count; MIN/MAX merge by
//! comparison folds whose ties resolve to the earlier range, and the hash
//! arm's first-seen key order is schedule-independent because the split
//! tree always merges the earlier range into the left operand. Plain
//! doubles cannot merge exactly — the *only* way to parallelize them
//! without changing the answer would be to materialize or sort — so the
//! fused executor deliberately runs [`SumBackend::Double`] serially at any
//! requested thread count: the engine's answers are then independent of
//! `threads` for every backend, which the proptests assert.
//! [`SumBackend::SortedDouble`] is inherently materializing (it sorts the
//! projected values) and is routed to the materializing pipeline by the
//! query entry points, never reaching this executor.

use crate::column::{ColRef, Column, EncodingError, Table};
use crate::expr::{
    advance_run, BoolExpr, BoundExpr, BoundPredicate, CompiledExpr, CompiledPredicate, EvalScratch,
    Expr,
};
use crate::q1::PhaseTiming;
use crate::sum_op::{GroupedStates, OverflowError, SumBackend, SCAN_MORSEL_ROWS};
use rayon::prelude::*;
use rfa_agg::{AggHashTable, HashKind};
use rfa_core::cpu::{self, SimdLevel};
use rfa_core::{faults, CancelToken};
use std::time::{Duration, Instant};

/// Rows per scan batch. 4096 rows keep one selection vector, one group-id
/// vector and a handful of f64 registers (~32 KiB each) L2-resident while
/// amortizing per-batch dispatch — the X100 sweet spot.
pub const FUSED_BATCH_ROWS: usize = 4096;

/// GROUP BY over two dictionary-encoded `U8` columns, mapped to a dense
/// group id by `encode` (Q1's `(l_returnflag, l_linestatus)` pair).
#[derive(Clone, Debug)]
pub struct GroupSpec {
    pub a: ColRef,
    pub b: ColRef,
    pub encode: fn(u8, u8) -> u32,
}

/// Grouping mode of a fused scan.
#[derive(Clone, Debug)]
pub enum GroupKey {
    /// No GROUP BY: one un-grouped accumulator (group id 0).
    None,
    /// Dense dictionary-encoded grouping over a `U8` column pair;
    /// `groups` is the number of ids `spec.encode` can produce.
    Dense { spec: GroupSpec, groups: usize },
    /// Arbitrary-cardinality grouping on an `I32`, `U32` or `U8` key
    /// column, group ids assigned through a per-morsel [`AggHashTable`].
    /// The key value `u32::MAX` (`-1_i32`) is reserved as the table's
    /// empty-slot sentinel; scanning it surfaces as
    /// [`FusedError::ReservedKey`].
    Hash { col: ColRef, hash: HashKind },
    /// Grouping on a pair of `U8` columns packed into one `u32` key
    /// (`(a << 8) | b`) through the hash arm — the SQL
    /// `GROUP BY a, b` shape over dictionary-encoded byte columns.
    HashPair {
        a: ColRef,
        b: ColRef,
        hash: HashKind,
    },
}

/// Runtime errors of the fused executor (as opposed to the validation
/// errors the plan layer raises before execution — these depend on the
/// *data*, not the query shape).
#[derive(Debug, Clone, PartialEq)]
pub enum FusedError {
    /// The Double backend detected overflow (MonetDB aborts the query).
    Overflow(OverflowError),
    /// A [`GroupKey::Hash`] scan encountered the reserved key value
    /// `u32::MAX` (`-1` on an `I32` column) in the named column.
    ReservedKey { col: String },
    /// A [`GroupKey::Dense`] `encode` fn produced an id outside
    /// `0..groups` for a value pair actually present in the data.
    GroupIdOutOfBounds { got: u32, groups: usize },
    /// The query's [`ExecOptions::cancel`] token tripped. Cooperative: the
    /// scan noticed at a batch boundary and unwound with this typed error
    /// — never a panic. Because accumulators are associative, a cancelled
    /// query retried later returns bit-identical results.
    Cancelled,
    /// The query ran past its [`ExecOptions::deadline`]. A zero deadline
    /// times out immediately (before the first batch), by design.
    DeadlineExceeded {
        /// The budget that was exceeded.
        deadline: Duration,
    },
    /// An encoded column referenced by the query failed
    /// [`Column::validate_encoding`] (codes out of dictionary range, run
    /// ends not strictly increasing or not covering the column). Checked
    /// once per query before any batch is scanned, so malformed encodings
    /// surface as this typed error — never as a panic mid-scan.
    Encoding {
        /// Name of the malformed column.
        col: String,
        error: EncodingError,
    },
}

impl std::fmt::Display for FusedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusedError::Overflow(e) => write!(f, "{e}"),
            FusedError::ReservedKey { col } => write!(
                f,
                "group key column {col:?} contains the reserved value u32::MAX (-1_i32)"
            ),
            FusedError::GroupIdOutOfBounds { got, groups } => {
                write!(
                    f,
                    "dense group encoding produced id {got} >= groups {groups}"
                )
            }
            FusedError::Cancelled => write!(f, "query cancelled"),
            FusedError::DeadlineExceeded { deadline } => {
                write!(f, "query exceeded its {deadline:?} deadline")
            }
            FusedError::Encoding { col, error } => write!(f, "column {col:?}: {error}"),
        }
    }
}

impl std::error::Error for FusedError {}

impl From<OverflowError> for FusedError {
    fn from(e: OverflowError) -> Self {
        FusedError::Overflow(e)
    }
}

/// A fused scan-aggregate query in physical form: conjunctive filter, the
/// input expression of every SUM / MIN / MAX state array (COUNT is always
/// maintained), and the grouping mode. The plan layer lowers a logical
/// [`crate::plan::QueryPlan`] into this shape.
pub struct FusedQuery {
    /// Conjuncts of the scan filter (all must hold).
    pub filter: Vec<BoolExpr>,
    /// One [`crate::GroupedSums`] state array per entry.
    pub sums: Vec<Expr>,
    /// One per-group minimum array per entry.
    pub mins: Vec<Expr>,
    /// One per-group maximum array per entry.
    pub maxs: Vec<Expr>,
    pub group_by: GroupKey,
}

/// Execution options of the fused pipeline.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Worker budget: 1 runs serial, >1 runs morsel-parallel on the
    /// global pool. Results are bit-identical either way (see module doc).
    pub threads: usize,
    /// Rows per batch (default [`FUSED_BATCH_ROWS`]; tests shrink it to
    /// force many batches on small inputs).
    pub batch_rows: usize,
    /// Rows per parallel morsel (default [`SCAN_MORSEL_ROWS`]; tests
    /// shrink it to force real splits on small inputs).
    pub morsel_rows: usize,
    /// Wall-clock budget, measured from [`run_fused`] entry. `None` (the
    /// default) never expires. `Some(Duration::ZERO)` is an *immediate*
    /// typed timeout — checked before the first batch, so it errors even
    /// on an empty table; it is never clamped, hung on, or UB. A budget
    /// too large for the platform clock behaves like `None`.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token, polled at every batch boundary. A
    /// token cancelled before execution starts fails before the first
    /// batch with [`FusedError::Cancelled`].
    pub cancel: Option<CancelToken>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            batch_rows: FUSED_BATCH_ROWS,
            morsel_rows: SCAN_MORSEL_ROWS,
            deadline: None,
            cancel: None,
        }
    }
}

impl ExecOptions {
    /// Serial execution with default batch sizing.
    pub fn serial() -> Self {
        ExecOptions::default()
    }

    /// One worker per pool thread with default batch/morsel sizing.
    pub fn parallel() -> Self {
        ExecOptions {
            threads: rayon::current_num_threads().max(1),
            ..ExecOptions::default()
        }
    }

    /// Returns a copy with every zero *sizing* field clamped to 1. A zero
    /// thread, batch or morsel budget means "the minimum", never a hang or
    /// a divide-by-zero downstream — [`run_fused`] normalizes its options
    /// through this before executing. The deadline and cancellation fields
    /// pass through untouched: a zero deadline is a meaningful request
    /// ("fail now, typed"), not a degenerate sizing value.
    pub fn normalized(&self) -> Self {
        ExecOptions {
            threads: self.threads.max(1),
            batch_rows: self.batch_rows.max(1),
            morsel_rows: self.morsel_rows.max(1),
            deadline: self.deadline,
            cancel: self.cancel.clone(),
        }
    }
}

/// Resolved interruption state of one `run_fused` call: the token plus the
/// deadline converted to an absolute instant once, at query start. Checked
/// at every batch boundary (two branches when neither is set); explicit
/// cancellation wins over an expired deadline when both hold.
struct CancelCheck {
    cancel: Option<CancelToken>,
    deadline_at: Option<Instant>,
    deadline: Duration,
}

impl CancelCheck {
    fn new(opts: &ExecOptions) -> CancelCheck {
        CancelCheck {
            cancel: opts.cancel.clone(),
            // An unrepresentable absolute deadline (now + huge Duration
            // overflows the platform clock) can never be reached: None.
            deadline_at: opts.deadline.and_then(|d| Instant::now().checked_add(d)),
            deadline: opts.deadline.unwrap_or_default(),
        }
    }

    #[inline]
    fn check(&self) -> Result<(), FusedError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(FusedError::Cancelled);
            }
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Err(FusedError::DeadlineExceeded {
                    deadline: self.deadline,
                });
            }
        }
        Ok(())
    }
}

/// Result of a fused scan: finalized per-state per-group values, group
/// counts, the hash arm's group keys, and the CPU-time phase split (scan
/// vs aggregation; summed across workers on the parallel path, like the
/// paper's CPU-time accounting).
#[derive(Debug)]
pub struct FusedRun {
    /// `sums[s][g]` — SUM of state array `s` over group `g`.
    pub sums: Vec<Vec<f64>>,
    /// `mins[s][g]` — MIN (`+∞` for groups that matched no row).
    pub mins: Vec<Vec<f64>>,
    /// `maxs[s][g]` — MAX (`-∞` for groups that matched no row).
    pub maxs: Vec<Vec<f64>>,
    /// `counts[g]` — COUNT(*) per group.
    pub counts: Vec<u64>,
    /// [`GroupKey::Hash`] only: the key of each group slot, in first-seen
    /// row order (schedule-independent; see module doc).
    pub keys: Option<Vec<u32>>,
    pub timing: PhaseTiming,
}

/// Compiled form of a query's filter and aggregate input expressions.
struct CompiledAggs {
    filter: Vec<CompiledPredicate>,
    sums: Vec<CompiledExpr>,
    mins: Vec<CompiledExpr>,
    maxs: Vec<CompiledExpr>,
}

/// Executes a fused query over a table.
///
/// Panics if the query references a missing or mistyped column (queries
/// reaching this executor are engine-internal; the plan layer validates
/// user-built plans against the table first and surfaces `TableError`).
/// Returns [`FusedError::Overflow`] exactly when the materializing
/// pipeline would return [`OverflowError`], and the data-dependent
/// [`FusedError::ReservedKey`] / [`FusedError::GroupIdOutOfBounds`] for
/// inputs no up-front validation can rule out. Options are
/// [`ExecOptions::normalized`] first, so zero fields mean "minimum"
/// rather than a hang.
pub fn run_fused(
    table: &Table,
    query: &FusedQuery,
    backend: SumBackend,
    opts: &ExecOptions,
) -> Result<FusedRun, FusedError> {
    assert!(
        backend != SumBackend::SortedDouble,
        "SortedDouble is inherently materializing; route it to the materializing pipeline"
    );
    let opts = opts.normalized();
    // Resolve the deadline to an absolute instant once, then check before
    // any work: a pre-cancelled token or a zero deadline fails here with a
    // typed error even on an empty table.
    let check = CancelCheck::new(&opts);
    check.check()?;
    let compiled = CompiledAggs {
        filter: query.filter.iter().map(BoolExpr::compile).collect(),
        sums: query.sums.iter().map(Expr::compile).collect(),
        mins: query.mins.iter().map(Expr::compile).collect(),
        maxs: query.maxs.iter().map(Expr::compile).collect(),
    };
    validate_encodings(table, query, &compiled)?;
    let rows = table.rows();

    // Plain doubles cannot merge exactly: parallel execution would change
    // the answer, so they always scan serially (module doc).
    let threads = if backend.merges_exactly() {
        opts.threads
    } else {
        1
    };

    let partial = if threads <= 1 || rows <= opts.morsel_rows {
        scan_range(table, query, &compiled, backend, &opts, &check, 0, rows)?
    } else {
        let morsels = rows.div_ceil(opts.morsel_rows);
        (0..morsels)
            .into_par_iter()
            .with_min_len(1)
            .map(|m| {
                let lo = m * opts.morsel_rows;
                let hi = (lo + opts.morsel_rows).min(rows);
                scan_range(table, query, &compiled, backend, &opts, &check, lo, hi).map(Some)
            })
            .reduce(
                || Ok(None),
                |a: Result<Option<Partial>, FusedError>, b| match (a?, b?) {
                    (Some(mut x), Some(y)) => {
                        x.merge(y)?;
                        Ok(Some(x))
                    }
                    (x, y) => Ok(x.or(y)),
                },
            )?
            .expect("at least one morsel")
    };

    let t0 = Instant::now();
    let out = partial.states.finalize();
    let mut timing = partial.timing;
    timing.other += t0.elapsed();
    Ok(FusedRun {
        sums: out.sums,
        mins: out.mins,
        maxs: out.maxs,
        counts: out.counts,
        keys: partial.hash.map(|h| h.keys),
        timing,
    })
}

/// Validates every encoded column the query touches — filter and
/// aggregate inputs plus the group-key columns — exactly once, before any
/// batch is scanned. The batch kernels index dictionaries by code and
/// trust run ends to be strictly increasing; a malformed encoding (built
/// by hand around the validating [`Column::dict`]/[`Column::rle`]
/// constructors) must surface as [`FusedError::Encoding`], never as a
/// panic or an out-of-bounds read mid-scan. Plain columns cost two loads
/// here; encoded ones cost one pass over their (byte-sized) codes or run
/// ends, once per query, not per morsel.
fn validate_encodings(
    table: &Table,
    query: &FusedQuery,
    compiled: &CompiledAggs,
) -> Result<(), FusedError> {
    let check = |name: &ColRef| -> Result<(), FusedError> {
        if let Ok(col) = table.column(name.as_str()) {
            if col.is_encoded() {
                col.validate_encoding()
                    .map_err(|error| FusedError::Encoding {
                        col: name.to_string(),
                        error,
                    })?;
            }
        }
        Ok(())
    };
    for p in &compiled.filter {
        for name in p.col_names() {
            check(name)?;
        }
    }
    for e in compiled
        .sums
        .iter()
        .chain(&compiled.mins)
        .chain(&compiled.maxs)
    {
        for name in e.col_names() {
            check(name)?;
        }
    }
    match &query.group_by {
        GroupKey::None => {}
        GroupKey::Dense { spec, .. } => {
            check(&spec.a)?;
            check(&spec.b)?;
        }
        GroupKey::Hash { col, .. } => check(col)?,
        GroupKey::HashPair { a, b, .. } => {
            check(a)?;
            check(b)?;
        }
    }
    Ok(())
}

/// Sentinel state in the key→group-id hash table: "no group id assigned
/// yet" (distinct from the table's own empty-*key* sentinel).
const NO_GROUP: u32 = u32::MAX;

/// Direct-mapped slot count of the last-seen key→group-id cache. Small
/// enough to stay L1-resident next to the scan's other working state.
const GID_CACHE_SLOTS: usize = 512;

/// Batches to sit out after the hit-rate gate trips before retrying.
const GID_CACHE_COOLDOWN: u32 = 32;

/// A direct-mapped last-seen key→group-id cache in front of the hash
/// table. Group keys arrive with heavy run locality in real scans —
/// Q15's suppkey after sorting, RLE-adjacent encodings, time-clustered
/// facts — and for those streams a key's group id was almost always
/// assigned a few rows ago. One array lookup then replaces the whole
/// hash-probe.
///
/// The cache is *bit-invisible* by construction: it only ever returns
/// group ids the table already assigned (entries are written at
/// assignment time and a key's id never changes), and a key's **first**
/// occurrence can never hit, so first-seen ordering is decided solely by
/// the table probe, exactly as without the cache. Stale entries are
/// therefore still-correct mappings, never wrong ones — no invalidation
/// exists anywhere.
///
/// Adversarial streams (uniform random keys over a domain much larger
/// than the cache) pay the lookup and miss almost always; a per-batch
/// hit-rate gate switches the front-end off for [`GID_CACHE_COOLDOWN`]
/// batches when fewer than 1-in-8 lookups hit, then retries (the stream
/// may turn clustered again).
struct GidCache {
    /// `u32::MAX` marks an empty entry — it is the engine's reserved
    /// group key, rejected before any key reaches the cache.
    keys: Vec<u32>,
    gids: Vec<u32>,
    cooldown: u32,
}

impl GidCache {
    fn new() -> Self {
        GidCache {
            keys: vec![u32::MAX; GID_CACHE_SLOTS],
            gids: vec![0; GID_CACHE_SLOTS],
            cooldown: 0,
        }
    }

    /// Whether the front-end runs for this batch (counting down a trip).
    #[inline]
    fn admit(&mut self) -> bool {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            false
        } else {
            true
        }
    }

    /// Post-batch gate on the observed hit rate.
    #[inline]
    fn observe(&mut self, hits: usize, lookups: usize) {
        if hits * 8 < lookups {
            self.cooldown = GID_CACHE_COOLDOWN;
        }
    }
}

/// The hash arm's group-id assignment state: an open-addressing table
/// mapping key → dense local group id, the inverse slot→key list in
/// first-seen row order, and the [`GidCache`] front-end.
struct HashGroups {
    table: AggHashTable<u32>,
    keys: Vec<u32>,
    cache: GidCache,
}

impl HashGroups {
    /// `rows` is the scan range's row count: the table is pre-sized for
    /// `rows / 4` distinct keys (capped at 64 Ki ≈ 1 MiB of table) so the
    /// common analytics shape — cardinality well below row count —
    /// reaches its final size without walking the doubling chain, whose
    /// rehashes otherwise re-insert every key once per doubling. Capacity
    /// is bit-invisible: group ids are assigned in first-seen row order
    /// whatever the slot count.
    fn new(hash: HashKind, rows: usize) -> Self {
        HashGroups {
            table: AggHashTable::with_capacity((rows / 4).clamp(64, 1 << 16), hash, &NO_GROUP),
            keys: Vec::new(),
            cache: GidCache::new(),
        }
    }

    /// Assigns a group id to every key in `key_buf`, appending to `gids`
    /// in row order and registering unseen keys in first-seen order.
    /// `gid_buf`/`miss_pos`/`miss_keys` are reused scratch.
    ///
    /// At SIMD dispatch levels the [`GidCache`] front-end short-circuits
    /// run-local keys and the remainder goes through the table's fused
    /// gather-compare-gather probe ([`AggHashTable::probe_gids`]): hit
    /// lanes produce their gid straight from the kernel, only first-seen
    /// keys and collision chains run scalar code. Under
    /// `RFA_SIMD=scalar` this is the plain batched loop of PR 8, which
    /// doubles as the bit-identity reference for the dispatch matrix
    /// tests.
    fn assign_gids(
        &mut self,
        key_buf: &[u32],
        gids: &mut Vec<u32>,
        gid_buf: &mut Vec<u32>,
        miss_pos: &mut Vec<u32>,
        miss_keys: &mut Vec<u32>,
    ) {
        let HashGroups { table, keys, cache } = self;
        // Cardinality pre-gate: once the table holds several times more
        // groups than the cache has slots, the direct-mapped front-end
        // cannot sustain a useful hit rate on anything but pathological
        // skew — skip it without burning a probe batch to find out.
        let fronted = cpu::active() != SimdLevel::Scalar
            && table.len() <= GID_CACHE_SLOTS * 4
            && cache.admit();
        if !fronted {
            table.probe_gids(key_buf, gids, |k| {
                let g = keys.len() as u32;
                keys.push(k);
                g
            });
            return;
        }
        let base = gids.len();
        gids.resize(base + key_buf.len(), NO_GROUP);
        miss_pos.clear();
        miss_keys.clear();
        for (i, &k) in key_buf.iter().enumerate() {
            let c = k as usize & (GID_CACHE_SLOTS - 1);
            if cache.keys[c] == k {
                gids[base + i] = cache.gids[c];
            } else {
                miss_pos.push(i as u32);
                miss_keys.push(k);
            }
        }
        let hits = key_buf.len() - miss_keys.len();
        gid_buf.clear();
        table.probe_gids(miss_keys, gid_buf, |k| {
            let g = keys.len() as u32;
            keys.push(k);
            g
        });
        for (j, &g) in gid_buf.iter().enumerate() {
            let k = miss_keys[j];
            let c = k as usize & (GID_CACHE_SLOTS - 1);
            cache.keys[c] = k;
            cache.gids[c] = g;
            gids[base + miss_pos[j] as usize] = g;
        }
        cache.observe(hits, key_buf.len());
    }
}

/// Per-morsel (or whole-input) accumulation state.
struct Partial {
    states: GroupedStates,
    /// `Some` for [`GroupKey::Hash`]: this range's key→group-id mapping.
    hash: Option<HashGroups>,
    timing: PhaseTiming,
}

impl Partial {
    fn merge(&mut self, mut other: Partial) -> Result<(), FusedError> {
        let Partial { states, hash, .. } = self;
        match (hash.as_mut(), other.hash) {
            // Dense / un-grouped: both sides index groups identically.
            (None, None) => states.merge(other.states)?,
            // Hash: fold the other side's slots in by *key*. `self` holds
            // the earlier row range (the reduction merges morsels in index
            // order), so appending unseen keys here reproduces the global
            // first-seen order, and tie-breaking folds keep earlier rows.
            (Some(h), Some(oh)) => {
                for (src, &key) in oh.keys.iter().enumerate() {
                    let slot = h.table.slot_mut(key, &NO_GROUP);
                    if *slot == NO_GROUP {
                        *slot = h.keys.len() as u32;
                        h.keys.push(key);
                    }
                    let dst = *slot as usize;
                    states.ensure_groups(h.keys.len());
                    states.merge_group(dst, &mut other.states, src)?;
                }
            }
            _ => unreachable!("hash and dense partials never mix"),
        }
        self.timing.scan += other.timing.scan;
        self.timing.aggregation += other.timing.aggregation;
        self.timing.other += other.timing.other;
        Ok(())
    }
}

/// A `U8` group-key leg bound to its storage, *without decompressing*:
/// plain bytes, dictionary codes indexing a ≤256-entry byte dictionary,
/// or RLE runs walked by a monotonic cursor. The fused scan reads group
/// keys through this — the compressed forms never materialize an n-sized
/// byte vector.
#[derive(Clone, Copy)]
enum U8Src<'t> {
    Plain(&'t [u8]),
    Dict {
        codes: &'t [u8],
        dict: &'t [u8],
    },
    /// Wide-dictionary storage (`u16` codes). A `U8` inner dictionary has
    /// ≤256 distinct values so [`Column::dict_encode`] never *produces*
    /// this shape, but reordered or hand-built tables can carry it.
    Dict16 {
        codes: &'t [u16],
        dict: &'t [u8],
    },
    Rle {
        run_ends: &'t [u32],
        values: &'t [u8],
    },
}

impl<'t> U8Src<'t> {
    /// The key byte of `row`. `cursor` is this leg's run position, carried
    /// across calls (selection vectors are increasing, so the RLE arm is
    /// amortized O(1); [`advance_run`] resets by binary search otherwise).
    /// Dictionary codes were validated against the dictionary length
    /// before the scan started, so the index cannot be out of bounds.
    #[inline(always)]
    fn get(&self, row: usize, cursor: &mut usize) -> u8 {
        match *self {
            U8Src::Plain(col) => col[row],
            U8Src::Dict { codes, dict } => dict[codes[row] as usize],
            U8Src::Dict16 { codes, dict } => dict[codes[row] as usize],
            U8Src::Rle { run_ends, values } => {
                *cursor = advance_run(run_ends, *cursor, row as u32);
                values[*cursor]
            }
        }
    }

    fn rle(&self) -> Option<(&'t [u32], &'t [u8])> {
        match *self {
            U8Src::Rle { run_ends, values } => Some((run_ends, values)),
            _ => None,
        }
    }
}

/// A hash-grouping key column bound to its storage. `I32` keys are mapped
/// to `u32` by bit pattern (a bijection), so negative keys group
/// correctly — except `-1`, which collides with the reserved sentinel.
/// `U8` and packed `U8` pairs can never produce the sentinel. Encoded key
/// columns precompute the `u32` key per dictionary code / per run, so the
/// per-row work is one byte load plus one table lookup — the column is
/// never decompressed.
enum KeyCol<'t> {
    I32(&'t [i32]),
    U32(&'t [u32]),
    U8(&'t [u8]),
    /// Dictionary-encoded key column: `keys[code]` is the key of every row
    /// carrying `code` (indexed by the validated codes, so ≤ dict len).
    Dict {
        codes: &'t [u8],
        keys: Vec<u32>,
    },
    /// Wide-dictionary key column (`u16` codes, ≤65536 entries): same
    /// per-code key table, two-byte loads.
    Dict16 {
        codes: &'t [u16],
        keys: Vec<u32>,
    },
    /// RLE key column: `keys[run]` is the key of every row in `run`.
    Rle {
        run_ends: &'t [u32],
        keys: Vec<u32>,
    },
    U8Pair(U8Src<'t>, U8Src<'t>),
}

/// Run positions of the (up to two) RLE group-key legs of a scan range,
/// carried across batches.
#[derive(Default)]
struct RunCursors {
    a: usize,
    b: usize,
}

impl KeyCol<'_> {
    #[inline(always)]
    fn get(&self, row: usize, cur: &mut RunCursors) -> u32 {
        match self {
            KeyCol::I32(col) => col[row] as u32,
            KeyCol::U32(col) => col[row],
            KeyCol::U8(col) => col[row] as u32,
            KeyCol::Dict { codes, keys } => keys[codes[row] as usize],
            KeyCol::Dict16 { codes, keys } => keys[codes[row] as usize],
            KeyCol::Rle { run_ends, keys } => {
                cur.a = advance_run(run_ends, cur.a, row as u32);
                keys[cur.a]
            }
            KeyCol::U8Pair(a, b) => {
                ((a.get(row, &mut cur.a) as u32) << 8) | b.get(row, &mut cur.b) as u32
            }
        }
    }

    /// Bulk key extraction for a contiguous row range `lo..lo + len` —
    /// the no-predicate scan case, where the per-row [`Self::get`] +
    /// sentinel-check + push loop reduces to a widening slice copy (or a
    /// gather through the ≤2^16-entry dictionary) that the compiler
    /// vectorizes, with the reserved-key check hoisted into one compare
    /// scan afterwards. Returns `false` for the run-cursor shapes, which
    /// keep the per-row loop.
    fn fill_contiguous(&self, lo: usize, len: usize, out: &mut Vec<u32>) -> bool {
        match self {
            KeyCol::I32(col) => out.extend(col[lo..lo + len].iter().map(|&v| v as u32)),
            KeyCol::U32(col) => out.extend_from_slice(&col[lo..lo + len]),
            KeyCol::U8(col) => out.extend(col[lo..lo + len].iter().map(|&v| v as u32)),
            KeyCol::Dict { codes, keys } => {
                out.extend(codes[lo..lo + len].iter().map(|&c| keys[c as usize]))
            }
            KeyCol::Dict16 { codes, keys } => {
                out.extend(codes[lo..lo + len].iter().map(|&c| keys[c as usize]))
            }
            KeyCol::Rle { .. } | KeyCol::U8Pair(..) => return false,
        }
        true
    }
}

/// The per-code (dictionary) or per-run (RLE) `u32` hash keys of an
/// encoded key column's inner values — one widening pass over the
/// dictionary entries (≤256 for `Dict`, ≤65536 for `Dict16`) or the run
/// values, never over n rows.
fn inner_keys(col: &Column) -> Vec<u32> {
    match col {
        Column::I32(v) => v.iter().map(|&x| x as u32).collect(),
        Column::U32(v) => v.to_vec(),
        Column::U8(v) => v.iter().map(|&x| x as u32).collect(),
        other => panic!(
            "hash group key must be an I32, U32 or U8 column, found {}",
            other.type_name()
        ),
    }
}

/// Per-batch grouping context of one scan range.
enum GroupCtx<'t> {
    Single,
    Dense {
        a: U8Src<'t>,
        b: U8Src<'t>,
        encode: fn(u8, u8) -> u32,
        groups: usize,
    },
    Hash {
        col: &'t ColRef,
        key_col: KeyCol<'t>,
    },
}

/// A fully-RLE hash key: a single RLE key column with per-run keys, or a
/// `U8` pair whose legs are both RLE. Either way the key is computable
/// once per run span, so hash grouping upserts per span, not per row.
#[derive(Clone, Copy)]
enum RleKey<'a> {
    Single {
        run_ends: &'a [u32],
        keys: &'a [u32],
    },
    Pair {
        ea: &'a [u32],
        va: &'a [u8],
        eb: &'a [u32],
        vb: &'a [u8],
    },
}

/// How a batch's selected rows deposit into the group states.
#[derive(Clone, Copy, PartialEq)]
enum Deposit {
    /// Ungrouped: the single-group block kernels.
    Single,
    /// One group id per selected row (`gids`).
    Rows,
    /// Run-blocked: `segs` partitions the selection into maximal spans of
    /// rows sharing a group (RLE group keys only); each span deposits
    /// through one `update_*_run` block call instead of per-row updates.
    Segs,
}

/// Ceiling on the dictionary algebraic path's flat `(group, code)`
/// histogram, in entries (`groups × dictionary size`). Beyond this the
/// histogram's footprint would dwarf the per-row deposits it saves, so
/// the batch falls back to the per-row path — the deposit algebra is
/// exact, so results are bit-identical either way.
const ALG_HIST_MAX: usize = 1 << 22;

/// A SUM / MIN / MAX input that is a *bare encoded column*, bound for
/// algebraic aggregation: instead of gathering one `f64` per selected
/// row, each selected RLE run span deposits once with its repetition
/// count, and each batch accumulates per-`(group, code)` row counts for
/// dictionary columns, flushing one deposit per touched entry at batch
/// end ([`GroupedStates::deposit_scaled`] — the exact `k·v` fold). The
/// inner values widen to `f64` here, once per run / per code, with the
/// same `as f64` conversion the gather path applies per row, so the
/// deposited values are bit-identical to the per-row path's.
enum AlgSrc<'t> {
    Rle {
        run_ends: &'t [u32],
        values: Vec<f64>,
    },
    Dict {
        codes: DictCodes<'t>,
        vals: Vec<f64>,
    },
}

/// Dictionary codes at either width, read as `usize` indexes.
#[derive(Clone, Copy)]
enum DictCodes<'t> {
    U8(&'t [u8]),
    U16(&'t [u16]),
}

impl DictCodes<'_> {
    #[inline(always)]
    fn get(&self, row: usize) -> usize {
        match *self {
            DictCodes::U8(c) => c[row] as usize,
            DictCodes::U16(c) => c[row] as usize,
        }
    }
}

/// Widens a plain numeric column to `f64` — the identical conversion the
/// gather path's `Vals::get` performs per row, hoisted to once per
/// dictionary entry / run value.
fn widen_plain(col: &Column) -> Option<Vec<f64>> {
    Some(match col {
        Column::F64(v) => v.to_vec(),
        Column::I32(v) => v.iter().map(|&x| x as f64).collect(),
        Column::U32(v) => v.iter().map(|&x| x as f64).collect(),
        Column::U8(v) => v.iter().map(|&x| x as f64).collect(),
        _ => return None,
    })
}

/// Binds `expr` for algebraic aggregation if it is a bare encoded column
/// over plain numeric storage. Anything else — expression compositions,
/// plain columns, nested encodings — returns `None` and takes the
/// per-row gather path.
fn bind_alg<'t>(expr: &Expr, table: &'t Table) -> Option<AlgSrc<'t>> {
    let Expr::Col(name) = expr else { return None };
    match table.column(name.as_str()).ok()? {
        Column::Rle { run_ends, values } => Some(AlgSrc::Rle {
            run_ends,
            values: widen_plain(values)?,
        }),
        Column::Dict { codes, dict } => Some(AlgSrc::Dict {
            codes: DictCodes::U8(codes),
            vals: widen_plain(dict)?,
        }),
        Column::Dict16 { codes, dict } => Some(AlgSrc::Dict {
            codes: DictCodes::U16(codes),
            vals: widen_plain(dict)?,
        }),
        _ => None,
    }
}

/// Which state array an algebraic deposit feeds.
#[derive(Clone, Copy)]
enum AlgAgg {
    Sum(usize),
    Min(usize),
    Max(usize),
}

/// Calls `f(group, start, end)` for each maximal span `sel[start..end)`
/// of the batch's selection whose rows share one group id, in selection
/// order.
fn for_each_group_span(
    deposit: Deposit,
    sel_len: usize,
    gids: &[u32],
    segs: &[(u32, usize)],
    mut f: impl FnMut(u32, usize, usize) -> Result<(), FusedError>,
) -> Result<(), FusedError> {
    match deposit {
        Deposit::Single => {
            if sel_len > 0 {
                f(0, 0, sel_len)?;
            }
        }
        Deposit::Segs => {
            let mut start = 0;
            for &(g, end) in segs {
                f(g, start, end)?;
                start = end;
            }
        }
        Deposit::Rows => {
            let mut i = 0;
            while i < sel_len {
                let g = gids[i];
                let mut j = i + 1;
                while j < sel_len && gids[j] == g {
                    j += 1;
                }
                f(g, i, j)?;
                i = j;
            }
        }
    }
    Ok(())
}

/// Deposits one batch of an algebraic source: once per `(group, run)`
/// span for RLE, once per touched `(group, code)` pair for dictionaries.
/// `cursor` is this source's RLE run position, carried across the range's
/// batches (selections are increasing, so advancing is amortized O(1)).
/// Returns `Ok(false)` *without depositing* when the dictionary histogram
/// would exceed [`ALG_HIST_MAX`]; the caller then runs the per-row path
/// for this batch.
#[allow(clippy::too_many_arguments)]
fn deposit_algebraic(
    states: &mut GroupedStates,
    agg: AlgAgg,
    src: &AlgSrc<'_>,
    cursor: &mut usize,
    sel: &[u32],
    deposit: Deposit,
    gids: &[u32],
    segs: &[(u32, usize)],
    groups: usize,
    hist: &mut Vec<u32>,
    touched: &mut Vec<u32>,
) -> Result<bool, FusedError> {
    match src {
        AlgSrc::Rle { run_ends, values } => {
            for_each_group_span(deposit, sel.len(), gids, segs, |g, start, end| {
                let mut i = start;
                while i < end {
                    *cursor = advance_run(run_ends, *cursor, sel[i]);
                    // The deposit span ends where the value run does (or
                    // where the selection / group span leaves it).
                    let bound = run_ends[*cursor];
                    let mut j = i + 1;
                    while j < end && sel[j] < bound {
                        j += 1;
                    }
                    let v = values[*cursor];
                    match agg {
                        AlgAgg::Sum(s) => {
                            states.deposit_scaled(s, g as usize, v, (j - i) as u64)?
                        }
                        AlgAgg::Min(s) => states.update_min_value(s, g as usize, v),
                        AlgAgg::Max(s) => states.update_max_value(s, g as usize, v),
                    }
                    i = j;
                }
                Ok(())
            })?;
        }
        AlgSrc::Dict { codes, vals } => {
            let dict_len = vals.len();
            // The histogram only pays when codes repeat within the batch.
            // A dictionary comparable to the batch's selection would
            // flush nearly one k·v deposit per row — pricier than the
            // per-row deposits it replaces — so such batches fall back.
            if dict_len > sel.len() / 2 {
                return Ok(false);
            }
            let need = groups * dict_len;
            if need > ALG_HIST_MAX {
                return Ok(false);
            }
            if hist.len() < need {
                hist.resize(need, 0);
            }
            for_each_group_span(deposit, sel.len(), gids, segs, |g, start, end| {
                let base = g as usize * dict_len;
                for &row in &sel[start..end] {
                    let key = base + codes.get(row as usize);
                    if hist[key] == 0 {
                        touched.push(key as u32);
                    }
                    hist[key] += 1;
                }
                Ok(())
            })?;
            // Flush order is touch order, not row order: fine, because
            // this path only runs for states that are pure functions of
            // the input multiset (and idempotent MIN / MAX folds).
            for &key in touched.iter() {
                let key = key as usize;
                let (g, c) = (key / dict_len, key % dict_len);
                match agg {
                    AlgAgg::Sum(s) => states.deposit_scaled(s, g, vals[c], hist[key] as u64)?,
                    AlgAgg::Min(s) => states.update_min_value(s, g, vals[c]),
                    AlgAgg::Max(s) => states.update_max_value(s, g, vals[c]),
                }
                hist[key] = 0;
            }
            touched.clear();
        }
    }
    Ok(true)
}

/// Scans `[lo, hi)` batch-at-a-time into fresh per-call states. All
/// scratch is batch-sized and reused across the range's batches. Each
/// batch boundary is a cancellation point (`check`) and a fault-injection
/// point ([`faults::scan_point`]).
#[allow(clippy::too_many_arguments)]
fn scan_range(
    table: &Table,
    query: &FusedQuery,
    compiled: &CompiledAggs,
    backend: SumBackend,
    opts: &ExecOptions,
    check: &CancelCheck,
    lo: usize,
    hi: usize,
) -> Result<Partial, FusedError> {
    let preds: Vec<BoundPredicate> = compiled
        .filter
        .iter()
        .map(|p| {
            p.bind(table)
                .expect("fused query references a missing or mistyped column")
        })
        .collect();
    fn bind_expr<'t>(c: &'t CompiledExpr, table: &'t Table) -> BoundExpr<'t> {
        c.bind(table)
            .expect("fused query references a missing or mistyped column")
    }
    let bound_sums: Vec<BoundExpr> = compiled.sums.iter().map(|c| bind_expr(c, table)).collect();
    let bound_mins: Vec<BoundExpr> = compiled.mins.iter().map(|c| bind_expr(c, table)).collect();
    let bound_maxs: Vec<BoundExpr> = compiled.maxs.iter().map(|c| bind_expr(c, table)).collect();

    // Algebraic sources: bare encoded SUM inputs take the once-per-run /
    // once-per-code deposit path only on backends whose state is a pure
    // function of the input multiset (`merges_exactly`) — there the k·v
    // fold is bit-identical to k per-row adds (DESIGN.md §26). Plain
    // doubles are order-sensitive with no algebraic shortcut, so they
    // keep the per-row path by design. MIN / MAX comparison folds are
    // idempotent and order-insensitive, so they fold once per span on
    // every backend.
    let alg_sums: Vec<Option<AlgSrc>> = if backend.merges_exactly() {
        query.sums.iter().map(|e| bind_alg(e, table)).collect()
    } else {
        query.sums.iter().map(|_| None).collect()
    };
    let alg_mins: Vec<Option<AlgSrc>> = query.mins.iter().map(|e| bind_alg(e, table)).collect();
    let alg_maxs: Vec<Option<AlgSrc>> = query.maxs.iter().map(|e| bind_alg(e, table)).collect();
    // Per-state-array RLE value-run cursors, carried across batches.
    let mut sum_cur = vec![0usize; alg_sums.len()];
    let mut min_cur = vec![0usize; alg_mins.len()];
    let mut max_cur = vec![0usize; alg_maxs.len()];
    // Dictionary (group, code) histogram scratch, all-zero between uses.
    let mut hist: Vec<u32> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();

    let bind_u8 = |name: &ColRef| -> U8Src {
        let col = table
            .column(name.as_str())
            .expect("fused query references a missing column");
        match col {
            Column::U8(v) => U8Src::Plain(v),
            Column::Dict { codes, dict } => match &**dict {
                Column::U8(d) => U8Src::Dict { codes, dict: d },
                other => panic!(
                    "dense group key must be a U8 column, found Dict<{}>",
                    other.type_name()
                ),
            },
            Column::Dict16 { codes, dict } => match &**dict {
                Column::U8(d) => U8Src::Dict16 { codes, dict: d },
                other => panic!(
                    "dense group key must be a U8 column, found Dict16<{}>",
                    other.type_name()
                ),
            },
            Column::Rle { run_ends, values } => match &**values {
                Column::U8(v) => U8Src::Rle {
                    run_ends,
                    values: v,
                },
                other => panic!(
                    "dense group key must be a U8 column, found Rle<{}>",
                    other.type_name()
                ),
            },
            other => panic!(
                "dense group key must be a U8 column, found {}",
                other.type_name()
            ),
        }
    };
    let (ctx, init_groups, mut hash) = match &query.group_by {
        GroupKey::None => (GroupCtx::Single, 1, None),
        GroupKey::Dense { spec, groups } => (
            GroupCtx::Dense {
                a: bind_u8(&spec.a),
                b: bind_u8(&spec.b),
                encode: spec.encode,
                groups: *groups,
            },
            *groups,
            None,
        ),
        GroupKey::Hash { col, hash } => (
            GroupCtx::Hash {
                col,
                key_col: match table
                    .column(col.as_str())
                    .expect("fused query references a missing column")
                {
                    Column::I32(v) => KeyCol::I32(v),
                    Column::U32(v) => KeyCol::U32(v),
                    Column::U8(v) => KeyCol::U8(v),
                    Column::Dict { codes, dict } => KeyCol::Dict {
                        codes,
                        keys: inner_keys(dict),
                    },
                    Column::Dict16 { codes, dict } => KeyCol::Dict16 {
                        codes,
                        keys: inner_keys(dict),
                    },
                    Column::Rle { run_ends, values } => KeyCol::Rle {
                        run_ends,
                        keys: inner_keys(values),
                    },
                    other => panic!(
                        "hash group key must be an I32, U32 or U8 column, found {}",
                        other.type_name()
                    ),
                },
            },
            0,
            Some(HashGroups::new(*hash, hi - lo)),
        ),
        GroupKey::HashPair { a, b, hash } => (
            GroupCtx::Hash {
                col: a,
                key_col: KeyCol::U8Pair(bind_u8(a), bind_u8(b)),
            },
            0,
            Some(HashGroups::new(*hash, hi - lo)),
        ),
    };

    let mut states = GroupedStates::new(
        backend,
        init_groups,
        bound_sums.len(),
        bound_mins.len(),
        bound_maxs.len(),
    );
    if hash.is_some() {
        // Mirror the hash table's pre-size (see [`HashGroups::new`]): the
        // state vectors reach working capacity up front, so incremental
        // `ensure_groups` growth extends in place instead of realloc-
        // moving every existing group state at each doubling.
        states.reserve_groups(((hi - lo) / 4).clamp(64, 1 << 16));
    }
    let mut timing = PhaseTiming::default();

    let mut sel: Vec<u32> = Vec::with_capacity(opts.batch_rows);
    let mut gids: Vec<u32> = Vec::with_capacity(opts.batch_rows);
    let mut key_buf: Vec<u32> = Vec::new();
    let mut slot_buf: Vec<u32> = Vec::new();
    let mut miss_pos: Vec<u32> = Vec::new();
    let mut miss_keys: Vec<u32> = Vec::new();
    let mut out: Vec<f64> = vec![0.0; opts.batch_rows];
    let mut scratch = EvalScratch::new();
    // Run-blocked grouping state: `(group id, end index in sel)` spans of
    // the current batch's selection, and the RLE leg cursors (monotonic
    // across batches of this range — batches advance forward).
    let mut segs: Vec<(u32, usize)> = Vec::new();
    let mut cur = RunCursors::default();

    let mut blo = lo;
    while blo < hi {
        check.check()?;
        faults::scan_point();
        let bhi = (blo + opts.batch_rows).min(hi);
        let t0 = Instant::now();

        // Filter: selection vector for this batch only.
        sel.clear();
        match preds.split_first() {
            None => sel.extend(blo as u32..bhi as u32),
            Some((first, rest)) => {
                first.fill(blo, bhi, &mut sel, &mut scratch);
                for p in rest {
                    p.refine(&mut sel, &mut scratch);
                }
            }
        }

        // Group-id assignment + COUNT(*). When every group-key leg is RLE
        // the batch takes the run-blocked path: the selection is cut into
        // maximal spans of rows sharing one group (`segs`), the group id
        // is computed once per span — per run, not per row — and counts
        // and state deposits happen in one block call per span.
        let (deposit, batch_groups) = match &ctx {
            GroupCtx::Single => {
                states.add_count_single(sel.len() as u64);
                (Deposit::Single, 1)
            }
            GroupCtx::Dense {
                a,
                b,
                encode,
                groups,
            } => {
                if let (Some((ea, va)), Some((eb, vb))) = (a.rle(), b.rle()) {
                    segs.clear();
                    let mut i = 0;
                    while i < sel.len() {
                        let row = sel[i];
                        cur.a = advance_run(ea, cur.a, row);
                        cur.b = advance_run(eb, cur.b, row);
                        let g = encode(va[cur.a], vb[cur.b]);
                        if g as usize >= *groups {
                            return Err(FusedError::GroupIdOutOfBounds {
                                got: g,
                                groups: *groups,
                            });
                        }
                        // The span ends where the first of the two runs
                        // does (or the selection skips past it).
                        let bound = ea[cur.a].min(eb[cur.b]);
                        let mut j = i + 1;
                        while j < sel.len() && sel[j] < bound {
                            j += 1;
                        }
                        states.add_count_run(g as usize, (j - i) as u64);
                        segs.push((g, j));
                        i = j;
                    }
                    (Deposit::Segs, *groups)
                } else {
                    gids.clear();
                    for &row in &sel {
                        let g = encode(
                            a.get(row as usize, &mut cur.a),
                            b.get(row as usize, &mut cur.b),
                        );
                        if g as usize >= *groups {
                            return Err(FusedError::GroupIdOutOfBounds {
                                got: g,
                                groups: *groups,
                            });
                        }
                        gids.push(g);
                    }
                    states.add_counts(&gids);
                    (Deposit::Rows, *groups)
                }
            }
            GroupCtx::Hash { col, key_col } => {
                let h = hash.as_mut().expect("hash grouping has a HashGroups");
                // Run-blocked path when the key is fully RLE: a single RLE
                // key column, or a U8 pair with both legs RLE.
                let rle_key = match key_col {
                    KeyCol::Rle { run_ends, keys } => Some(RleKey::Single { run_ends, keys }),
                    KeyCol::U8Pair(a, b) => match (a.rle(), b.rle()) {
                        (Some((ea, va)), Some((eb, vb))) => Some(RleKey::Pair { ea, va, eb, vb }),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(rk) = rle_key {
                    segs.clear();
                    let mut i = 0;
                    while i < sel.len() {
                        let row = sel[i];
                        let (key, bound) = match rk {
                            RleKey::Single { run_ends, keys } => {
                                cur.a = advance_run(run_ends, cur.a, row);
                                (keys[cur.a], run_ends[cur.a])
                            }
                            RleKey::Pair { ea, va, eb, vb } => {
                                cur.a = advance_run(ea, cur.a, row);
                                cur.b = advance_run(eb, cur.b, row);
                                (
                                    ((va[cur.a] as u32) << 8) | vb[cur.b] as u32,
                                    ea[cur.a].min(eb[cur.b]),
                                )
                            }
                        };
                        if key == u32::MAX {
                            return Err(FusedError::ReservedKey {
                                col: col.to_string(),
                            });
                        }
                        let mut j = i + 1;
                        while j < sel.len() && sel[j] < bound {
                            j += 1;
                        }
                        let slot = h.table.slot_mut(key, &NO_GROUP);
                        if *slot == NO_GROUP {
                            *slot = h.keys.len() as u32;
                            h.keys.push(key);
                        }
                        let g = *slot;
                        states.ensure_groups(h.keys.len());
                        states.add_count_run(g as usize, (j - i) as u64);
                        segs.push((g, j));
                        i = j;
                    }
                    (Deposit::Segs, h.keys.len())
                } else {
                    key_buf.clear();
                    // An unfiltered batch selects the whole contiguous
                    // range; bulk-extract its keys and fold the per-row
                    // reserved-key branch into one compare scan.
                    let bulk = match (sel.first(), sel.last()) {
                        (Some(&f), Some(&l)) if (l - f) as usize + 1 == sel.len() => {
                            key_col.fill_contiguous(f as usize, sel.len(), &mut key_buf)
                        }
                        _ => false,
                    };
                    if bulk {
                        if key_buf.contains(&u32::MAX) {
                            return Err(FusedError::ReservedKey {
                                col: col.to_string(),
                            });
                        }
                    } else {
                        for &row in &sel {
                            let k = key_col.get(row as usize, &mut cur);
                            if k == u32::MAX {
                                return Err(FusedError::ReservedKey {
                                    col: col.to_string(),
                                });
                            }
                            key_buf.push(k);
                        }
                    }
                    gids.clear();
                    h.assign_gids(
                        &key_buf,
                        &mut gids,
                        &mut slot_buf,
                        &mut miss_pos,
                        &mut miss_keys,
                    );
                    states.ensure_groups(h.keys.len());
                    states.add_counts(&gids);
                    (Deposit::Rows, h.keys.len())
                }
            }
        };
        timing.scan += t0.elapsed();

        // Project + aggregate, one state array at a time.
        let values = |scratch: &mut EvalScratch, out: &mut [f64], e: &BoundExpr| {
            e.eval_into(&sel, scratch, out);
        };
        for (s, expr) in bound_sums.iter().enumerate() {
            if let Some(src) = &alg_sums[s] {
                let t2 = Instant::now();
                let done = deposit_algebraic(
                    &mut states,
                    AlgAgg::Sum(s),
                    src,
                    &mut sum_cur[s],
                    &sel,
                    deposit,
                    &gids,
                    &segs,
                    batch_groups,
                    &mut hist,
                    &mut touched,
                )?;
                timing.aggregation += t2.elapsed();
                if done {
                    continue;
                }
            }
            let t1 = Instant::now();
            values(&mut scratch, &mut out[..sel.len()], expr);
            timing.scan += t1.elapsed();
            let t2 = Instant::now();
            match deposit {
                Deposit::Single => states.update_sum_single(s, &out[..sel.len()])?,
                Deposit::Rows => states.update_sum(s, &gids, &out[..sel.len()])?,
                Deposit::Segs => {
                    let mut start = 0;
                    for &(g, end) in &segs {
                        states.update_sum_run(s, g as usize, &out[start..end])?;
                        start = end;
                    }
                }
            }
            timing.aggregation += t2.elapsed();
        }
        for (s, expr) in bound_mins.iter().enumerate() {
            if let Some(src) = &alg_mins[s] {
                let t2 = Instant::now();
                let done = deposit_algebraic(
                    &mut states,
                    AlgAgg::Min(s),
                    src,
                    &mut min_cur[s],
                    &sel,
                    deposit,
                    &gids,
                    &segs,
                    batch_groups,
                    &mut hist,
                    &mut touched,
                )?;
                timing.aggregation += t2.elapsed();
                if done {
                    continue;
                }
            }
            let t1 = Instant::now();
            values(&mut scratch, &mut out[..sel.len()], expr);
            timing.scan += t1.elapsed();
            let t2 = Instant::now();
            match deposit {
                Deposit::Single => states.update_min_single(s, &out[..sel.len()]),
                Deposit::Rows => states.update_min(s, &gids, &out[..sel.len()]),
                Deposit::Segs => {
                    let mut start = 0;
                    for &(g, end) in &segs {
                        states.update_min_run(s, g as usize, &out[start..end]);
                        start = end;
                    }
                }
            }
            timing.aggregation += t2.elapsed();
        }
        for (s, expr) in bound_maxs.iter().enumerate() {
            if let Some(src) = &alg_maxs[s] {
                let t2 = Instant::now();
                let done = deposit_algebraic(
                    &mut states,
                    AlgAgg::Max(s),
                    src,
                    &mut max_cur[s],
                    &sel,
                    deposit,
                    &gids,
                    &segs,
                    batch_groups,
                    &mut hist,
                    &mut touched,
                )?;
                timing.aggregation += t2.elapsed();
                if done {
                    continue;
                }
            }
            let t1 = Instant::now();
            values(&mut scratch, &mut out[..sel.len()], expr);
            timing.scan += t1.elapsed();
            let t2 = Instant::now();
            match deposit {
                Deposit::Single => states.update_max_single(s, &out[..sel.len()]),
                Deposit::Rows => states.update_max(s, &gids, &out[..sel.len()]),
                Deposit::Segs => {
                    let mut start = 0;
                    for &(g, end) in &segs {
                        states.update_max_run(s, g as usize, &out[start..end]);
                        start = end;
                    }
                }
            }
            timing.aggregation += t2.elapsed();
        }
        blo = bhi;
    }

    Ok(Partial {
        states,
        hash,
        timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn encode_low_bit(a: u8, b: u8) -> u32 {
        ((a & 1) * 2 + (b & 1)) as u32
    }

    fn sample_table(n: usize) -> Table {
        let mut t = Table::new("t");
        t.add_column(
            "x",
            Column::f64(
                (0..n)
                    .map(|i| (i % 97) as f64 * 0.25 - 8.0)
                    .collect::<Vec<_>>(),
            ),
        )
        .unwrap();
        t.add_column(
            "y",
            Column::f64((0..n).map(|i| (i % 13) as f64 * 0.01).collect::<Vec<_>>()),
        )
        .unwrap();
        t.add_column(
            "k",
            Column::i32((0..n).map(|i| (i % 31) as i32).collect::<Vec<_>>()),
        )
        .unwrap();
        t.add_column(
            "ga",
            Column::u8((0..n).map(|i| (i % 3) as u8).collect::<Vec<_>>()),
        )
        .unwrap();
        t.add_column(
            "gb",
            Column::u8((0..n).map(|i| (i % 5) as u8).collect::<Vec<_>>()),
        )
        .unwrap();
        t
    }

    fn sample_query() -> FusedQuery {
        FusedQuery {
            filter: vec![
                // 3 <= k < 27 on the I32 column (two typed fast conjuncts).
                Expr::col("k")
                    .ge(Expr::lit(3.0))
                    .and(Expr::col("k").lt(Expr::lit(27.0))),
                Expr::col("x").lt(Expr::lit(11.0)),
            ],
            sums: vec![
                Expr::col("x").mul(Expr::lit(1.0).sub(Expr::col("y"))),
                Expr::col("x"),
            ],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::Dense {
                spec: GroupSpec {
                    a: "ga".into(),
                    b: "gb".into(),
                    encode: encode_low_bit,
                },
                groups: 4,
            },
        }
    }

    /// Rows where every filter conjunct holds, via the materializing
    /// [`BoolExpr::eval`] reference (general mask program, no fast path).
    fn selected_rows(table: &Table, filter: &[BoolExpr]) -> Vec<u32> {
        let all: Vec<u32> = (0..table.rows() as u32).collect();
        let masks: Vec<Vec<bool>> = filter
            .iter()
            .map(|p| p.eval(table, &all).unwrap())
            .collect();
        all.into_iter()
            .filter(|&i| masks.iter().all(|m| m[i as usize]))
            .collect()
    }

    /// Materializing reference: n-sized selection vector, Expr::eval,
    /// sum_grouped — the pipeline fusion must be bit-identical to.
    fn reference(
        table: &Table,
        query: &FusedQuery,
        backend: SumBackend,
    ) -> (Vec<Vec<f64>>, Vec<u64>) {
        let sel = selected_rows(table, &query.filter);
        let (gids, groups): (Vec<u32>, usize) = match &query.group_by {
            GroupKey::Dense { spec, groups } => {
                let a = table.column(spec.a.as_str()).unwrap().as_u8();
                let b = table.column(spec.b.as_str()).unwrap().as_u8();
                (
                    sel.iter()
                        .map(|&i| (spec.encode)(a[i as usize], b[i as usize]))
                        .collect(),
                    *groups,
                )
            }
            GroupKey::None => (vec![0; sel.len()], 1),
            GroupKey::Hash { .. } | GroupKey::HashPair { .. } => {
                unreachable!("hash reference is separate")
            }
        };
        let sums = query
            .sums
            .iter()
            .map(|e| {
                let vals = e.eval(table, &sel).unwrap();
                crate::sum_op::sum_grouped(backend, &gids, &vals, groups).unwrap()
            })
            .collect();
        (sums, crate::sum_op::count_grouped(&gids, groups))
    }

    #[test]
    fn fused_matches_materializing_bitwise_across_batch_and_thread_shapes() {
        let table = sample_table(10_000);
        let query = sample_query();
        for backend in [
            SumBackend::Double,
            SumBackend::ReproUnbuffered,
            SumBackend::ReproBuffered { buffer_size: 128 },
            SumBackend::Rsum { levels: 2 },
            SumBackend::RsumBuffered {
                levels: 3,
                buffer_size: 64,
            },
        ] {
            let (ref_sums, ref_counts) = reference(&table, &query, backend);
            for (threads, batch_rows, morsel_rows) in [
                (1, 64, 1 << 16),
                (1, 4096, 1 << 16),
                (2, 128, 512),
                (8, 33, 256),
            ] {
                let opts = ExecOptions {
                    threads,
                    batch_rows,
                    morsel_rows,
                    ..ExecOptions::default()
                };
                let run = run_fused(&table, &query, backend, &opts).unwrap();
                assert_eq!(run.counts, ref_counts, "{backend:?} {opts:?}");
                for (a, (rs, fs)) in ref_sums.iter().zip(run.sums.iter()).enumerate() {
                    for (g, (r, f)) in rs.iter().zip(fs.iter()).enumerate() {
                        assert_eq!(
                            r.to_bits(),
                            f.to_bits(),
                            "{backend:?} {opts:?} agg {a} group {g}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hash_grouping_matches_dense_grouping_bitwise() {
        // Group by the i32 column "k" (domain 0..31) through the hash arm
        // and through an equivalent dense reference computed per key.
        let table = sample_table(8_000);
        let query = FusedQuery {
            filter: vec![Expr::col("x").lt(Expr::lit(9.5))],
            sums: vec![Expr::col("x").mul(Expr::col("y"))],
            mins: vec![Expr::col("x")],
            maxs: vec![Expr::col("x")],
            group_by: GroupKey::Hash {
                col: "k".into(),
                hash: HashKind::Identity,
            },
        };
        // Dense reference: key is its own dense id (domain 0..31).
        let k = table.column("k").unwrap().as_i32().to_vec();
        let x = table.column("x").unwrap().as_f64().to_vec();
        let y = table.column("y").unwrap().as_f64().to_vec();
        let sel: Vec<usize> = (0..table.rows()).filter(|&i| x[i] < 9.5).collect();
        let gids: Vec<u32> = sel.iter().map(|&i| k[i] as u32).collect();
        let vals: Vec<f64> = sel.iter().map(|&i| x[i] * y[i]).collect();
        for backend in [
            SumBackend::Double,
            SumBackend::ReproUnbuffered,
            SumBackend::RsumBuffered {
                levels: 2,
                buffer_size: 32,
            },
        ] {
            let ref_sums = crate::sum_op::sum_grouped(backend, &gids, &vals, 31).unwrap();
            let ref_counts = crate::sum_op::count_grouped(&gids, 31);
            for threads in [1usize, 2, 8] {
                let opts = ExecOptions {
                    threads,
                    batch_rows: 129,
                    morsel_rows: 512,
                    ..ExecOptions::default()
                };
                let run = run_fused(&table, &query, backend, &opts).unwrap();
                let keys = run.keys.as_ref().unwrap();
                assert_eq!(keys.len(), 31, "{backend:?} t{threads}");
                for (slot, &key) in keys.iter().enumerate() {
                    assert_eq!(run.counts[slot], ref_counts[key as usize]);
                    assert_eq!(
                        run.sums[0][slot].to_bits(),
                        ref_sums[key as usize].to_bits(),
                        "{backend:?} t{threads} key {key}"
                    );
                    let min = sel
                        .iter()
                        .filter(|&&i| k[i] as u32 == key)
                        .map(|&i| x[i])
                        .fold(f64::INFINITY, f64::min);
                    let max = sel
                        .iter()
                        .filter(|&&i| k[i] as u32 == key)
                        .map(|&i| x[i])
                        .fold(f64::NEG_INFINITY, f64::max);
                    assert_eq!(run.mins[0][slot].to_bits(), min.to_bits());
                    assert_eq!(run.maxs[0][slot].to_bits(), max.to_bits());
                }
            }
        }
    }

    #[test]
    fn hash_group_key_order_is_thread_count_independent() {
        let table = sample_table(6_000);
        let query = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("x")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::Hash {
                col: "k".into(),
                hash: HashKind::Multiplicative,
            },
        };
        let serial = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        // Serial first-seen order over `k = i % 31` is simply 0, 1, 2, …
        assert_eq!(
            serial.keys.as_ref().unwrap()[..5],
            [0, 1, 2, 3, 4],
            "first-seen key order"
        );
        for threads in [2usize, 8] {
            let opts = ExecOptions {
                threads,
                batch_rows: 97,
                morsel_rows: 333,
                ..ExecOptions::default()
            };
            let run = run_fused(&table, &query, SumBackend::ReproUnbuffered, &opts).unwrap();
            assert_eq!(run.keys, serial.keys, "t{threads}");
            assert_eq!(run.counts, serial.counts);
            for (a, b) in serial.sums[0].iter().zip(run.sums[0].iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "t{threads}");
            }
        }
    }

    #[test]
    fn min_max_match_reference_per_dense_group() {
        let table = sample_table(5_000);
        let mut query = sample_query();
        query.mins = vec![Expr::col("x")];
        query.maxs = vec![Expr::col("x").mul(Expr::col("y"))];
        let run = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions {
                threads: 4,
                batch_rows: 61,
                morsel_rows: 200,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        // Scalar reference.
        let a = table.column("ga").unwrap().as_u8();
        let b = table.column("gb").unwrap().as_u8();
        let x = table.column("x").unwrap().as_f64();
        let y = table.column("y").unwrap().as_f64();
        let mut mins = [f64::INFINITY; 4];
        let mut maxs = [f64::NEG_INFINITY; 4];
        for i in selected_rows(&table, &query.filter) {
            let i = i as usize;
            let g = encode_low_bit(a[i], b[i]) as usize;
            mins[g] = mins[g].min(x[i]);
            maxs[g] = maxs[g].max(x[i] * y[i]);
        }
        for g in 0..4 {
            assert_eq!(run.mins[0][g].to_bits(), mins[g].to_bits(), "group {g}");
            assert_eq!(run.maxs[0][g].to_bits(), maxs[g].to_bits(), "group {g}");
        }
    }

    #[test]
    fn ungrouped_single_sink_path() {
        let table = sample_table(5_000);
        let query = FusedQuery {
            filter: vec![Expr::col("y").between(Expr::lit(0.02), Expr::lit(0.09))],
            sums: vec![Expr::col("x").mul(Expr::col("y"))],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::None,
        };
        for backend in [
            SumBackend::Double,
            SumBackend::ReproUnbuffered,
            SumBackend::ReproBuffered { buffer_size: 256 },
        ] {
            let (ref_sums, ref_counts) = reference(&table, &query, backend);
            let run = run_fused(&table, &query, backend, &ExecOptions::serial()).unwrap();
            assert_eq!(run.counts, ref_counts);
            assert_eq!(
                run.sums[0][0].to_bits(),
                ref_sums[0][0].to_bits(),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn empty_table_and_empty_filter() {
        let table = sample_table(0);
        let query = sample_query();
        let run = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        assert_eq!(run.counts, vec![0; 4]);
        assert!(run.sums.iter().all(|s| s.iter().all(|&v| v == 0.0)));

        // No filter at all: every row selected.
        let table = sample_table(100);
        let all = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("x")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::None,
        };
        let run = run_fused(
            &table,
            &all,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        assert_eq!(run.counts[0], 100);

        // Empty table through the hash arm: zero group slots.
        let table = sample_table(0);
        let hashed = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("x")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::Hash {
                col: "k".into(),
                hash: HashKind::Identity,
            },
        };
        let run = run_fused(
            &table,
            &hashed,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        assert_eq!(run.keys, Some(vec![]));
        assert!(run.counts.is_empty());
    }

    #[test]
    fn double_overflow_is_detected_in_fused_scan() {
        let mut t = Table::new("o");
        t.add_column("x", Column::f64(vec![f64::MAX, f64::MAX]))
            .unwrap();
        let q = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("x")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::None,
        };
        assert_eq!(
            run_fused(&t, &q, SumBackend::Double, &ExecOptions::serial()).unwrap_err(),
            FusedError::Overflow(OverflowError)
        );
    }

    #[test]
    fn reserved_hash_key_is_an_error_not_a_panic() {
        let mut t = Table::new("t");
        t.add_column("k", Column::i32(vec![1, 2, -1, 3])).unwrap();
        t.add_column("x", Column::f64(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        let q = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("x")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::Hash {
                col: "k".into(),
                hash: HashKind::Identity,
            },
        };
        for opts in [
            ExecOptions::serial(),
            ExecOptions {
                threads: 4,
                batch_rows: 2,
                morsel_rows: 2,
                ..ExecOptions::default()
            },
        ] {
            assert_eq!(
                run_fused(&t, &q, SumBackend::ReproUnbuffered, &opts).unwrap_err(),
                FusedError::ReservedKey { col: "k".into() }
            );
        }
    }

    #[test]
    fn out_of_bounds_dense_group_id_is_an_error_not_a_panic() {
        let table = sample_table(100);
        fn bad_encode(_a: u8, _b: u8) -> u32 {
            100
        }
        let q = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("x")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::Dense {
                spec: GroupSpec {
                    a: "ga".into(),
                    b: "gb".into(),
                    encode: bad_encode,
                },
                groups: 4,
            },
        };
        assert_eq!(
            run_fused(
                &table,
                &q,
                SumBackend::ReproUnbuffered,
                &ExecOptions::serial()
            )
            .unwrap_err(),
            FusedError::GroupIdOutOfBounds {
                got: 100,
                groups: 4
            }
        );
    }

    /// Satellite: a zero in any `ExecOptions` field is clamped to 1, not a
    /// hang or panic downstream — one test per field.
    #[test]
    fn zero_batch_rows_is_clamped() {
        let table = sample_table(500);
        let query = sample_query();
        let reference = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        let run = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions {
                batch_rows: 0,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(run.counts, reference.counts);
        assert_eq!(run.sums[0][0].to_bits(), reference.sums[0][0].to_bits());
    }

    #[test]
    fn zero_morsel_rows_is_clamped() {
        let table = sample_table(500);
        let query = sample_query();
        let reference = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        let run = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions {
                threads: 4,
                morsel_rows: 0,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(run.counts, reference.counts);
        assert_eq!(run.sums[0][0].to_bits(), reference.sums[0][0].to_bits());
    }

    #[test]
    fn zero_threads_is_clamped() {
        let table = sample_table(500);
        let query = sample_query();
        let reference = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        let run = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions {
                threads: 0,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(run.counts, reference.counts);
        assert_eq!(run.sums[0][0].to_bits(), reference.sums[0][0].to_bits());
    }

    #[test]
    fn normalized_clamps_only_zero_fields() {
        let opts = ExecOptions {
            threads: 0,
            batch_rows: 0,
            morsel_rows: 0,
            ..ExecOptions::default()
        }
        .normalized();
        assert_eq!((opts.threads, opts.batch_rows, opts.morsel_rows), (1, 1, 1));
        let opts = ExecOptions {
            threads: 3,
            batch_rows: 7,
            morsel_rows: 11,
            ..ExecOptions::default()
        }
        .normalized();
        assert_eq!(
            (opts.threads, opts.batch_rows, opts.morsel_rows),
            (3, 7, 11)
        );
    }

    /// Satellite: the deadline and cancellation fields pass through
    /// `normalized()` untouched — a zero deadline is a meaningful request,
    /// not a degenerate sizing value to clamp.
    #[test]
    fn normalized_preserves_deadline_and_cancel() {
        let token = CancelToken::new();
        let opts = ExecOptions {
            deadline: Some(Duration::ZERO),
            cancel: Some(token.clone()),
            ..ExecOptions::default()
        }
        .normalized();
        assert_eq!(opts.deadline, Some(Duration::ZERO));
        // The clone shares the original flag.
        token.cancel();
        assert!(opts.cancel.as_ref().unwrap().is_cancelled());
        let opts = ExecOptions::default().normalized();
        assert_eq!(opts.deadline, None);
        assert!(opts.cancel.is_none());
    }

    /// Satellite: `deadline: Some(Duration::ZERO)` is an immediate typed
    /// timeout — before the first batch, even on an empty table, on both
    /// the serial and parallel paths. Never UB, never a hang.
    #[test]
    fn zero_deadline_times_out_immediately() {
        for rows in [0usize, 5_000] {
            let table = sample_table(rows);
            let query = sample_query();
            for threads in [1usize, 4] {
                let opts = ExecOptions {
                    threads,
                    batch_rows: 64,
                    morsel_rows: 256,
                    deadline: Some(Duration::ZERO),
                    ..ExecOptions::default()
                };
                assert_eq!(
                    run_fused(&table, &query, SumBackend::ReproUnbuffered, &opts).unwrap_err(),
                    FusedError::DeadlineExceeded {
                        deadline: Duration::ZERO
                    },
                    "rows {rows} threads {threads}"
                );
            }
        }
    }

    /// Satellite: an absurdly large deadline must behave like "no
    /// deadline" (the absolute instant overflows the platform clock), and
    /// a generous one must not perturb results — bit-identical to a run
    /// without any deadline.
    #[test]
    fn huge_deadline_never_expires_and_does_not_perturb_results() {
        let table = sample_table(2_000);
        let query = sample_query();
        let plain = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        for deadline in [Duration::MAX, Duration::from_secs(3600)] {
            let opts = ExecOptions {
                deadline: Some(deadline),
                ..ExecOptions::default()
            };
            let run = run_fused(&table, &query, SumBackend::ReproUnbuffered, &opts).unwrap();
            assert_eq!(run.counts, plain.counts);
            for (a, b) in plain.sums[0].iter().zip(run.sums[0].iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Satellite: a token cancelled before execution fails up front with
    /// the typed error; an untripped token changes nothing.
    #[test]
    fn pre_cancelled_token_is_a_typed_error() {
        let table = sample_table(1_000);
        let query = sample_query();
        let token = CancelToken::new();
        token.cancel();
        for threads in [1usize, 4] {
            let opts = ExecOptions {
                threads,
                cancel: Some(token.clone()),
                ..ExecOptions::default()
            };
            assert_eq!(
                run_fused(&table, &query, SumBackend::ReproUnbuffered, &opts).unwrap_err(),
                FusedError::Cancelled
            );
        }
        let plain = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions::serial(),
        )
        .unwrap();
        let armed = run_fused(
            &table,
            &query,
            SumBackend::ReproUnbuffered,
            &ExecOptions {
                cancel: Some(CancelToken::new()),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.counts, armed.counts);
        assert_eq!(plain.sums[0][0].to_bits(), armed.sums[0][0].to_bits());
    }

    /// Cancellation lands *mid-scan*: an `encode` fn with a side effect
    /// trips the token partway through the scan (deterministic, same
    /// thread), and the next batch-boundary check must surface
    /// `Cancelled` — not a panic, not a hang, not a completed result.
    #[test]
    fn cancel_mid_scan_surfaces_typed_error() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::OnceLock;
        static TOKEN: OnceLock<CancelToken> = OnceLock::new();
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        fn cancelling_encode(a: u8, b: u8) -> u32 {
            if CALLS.fetch_add(1, Ordering::Relaxed) == 5_000 {
                TOKEN.get().unwrap().cancel();
            }
            encode_low_bit(a, b)
        }
        let token = TOKEN.get_or_init(CancelToken::new).clone();
        let table = sample_table(20_000);
        let query = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("x")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::Dense {
                spec: GroupSpec {
                    a: "ga".into(),
                    b: "gb".into(),
                    encode: cancelling_encode,
                },
                groups: 4,
            },
        };
        let opts = ExecOptions {
            batch_rows: 64, // many batches => many cancellation points
            cancel: Some(token),
            ..ExecOptions::default()
        };
        let err = run_fused(&table, &query, SumBackend::ReproUnbuffered, &opts).unwrap_err();
        assert_eq!(err, FusedError::Cancelled);
    }

    /// Tentpole: the same logical table with dictionary- and RLE-encoded
    /// group keys and measure columns must produce bit-identical results
    /// to the plain layout, across grouping modes, backends, threads and
    /// batch shapes — the executor reads the encodings, never decodes.
    #[test]
    fn encoded_tables_match_plain_tables_bitwise() {
        let n = 6_000;
        // Sorted-by-group layout so the RLE group keys have long runs.
        let mut rows: Vec<(u8, u8, f64, i32)> = (0..n)
            .map(|i| {
                (
                    (i % 3) as u8,
                    (i % 5) as u8,
                    (i % 97) as f64 * 0.25 - 8.0 + 2.5e-16,
                    i % 31,
                )
            })
            .collect();
        rows.sort_by_key(|&(a, b, ..)| (a, b));
        let ga: Vec<u8> = rows.iter().map(|r| r.0).collect();
        let gb: Vec<u8> = rows.iter().map(|r| r.1).collect();
        let x: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let k: Vec<i32> = rows.iter().map(|r| r.3).collect();

        let mut plain = Table::new("t");
        plain.add_column("ga", Column::u8(ga.clone())).unwrap();
        plain.add_column("gb", Column::u8(gb.clone())).unwrap();
        plain.add_column("x", Column::f64(x.clone())).unwrap();
        plain.add_column("k", Column::i32(k.clone())).unwrap();

        // Encoded twin: RLE group keys (sorted => few runs), dictionary
        // measure and RLE hash key.
        let mut enc = Table::new("t");
        enc.add_column("ga", Column::rle_encode(&Column::u8(ga)).unwrap())
            .unwrap();
        enc.add_column("gb", Column::dict_encode(&Column::u8(gb)).unwrap())
            .unwrap();
        enc.add_column("x", Column::dict_encode(&Column::f64(x)).unwrap())
            .unwrap();
        enc.add_column("k", Column::rle_encode(&Column::i32(k)).unwrap())
            .unwrap();
        // And a fully-RLE twin of the group-key pair for the run-blocked
        // dense/pair paths.
        let mut enc_rle = Table::new("t");
        for (name, col) in [
            ("ga", enc.column("ga").unwrap().decode()),
            ("gb", plain.column("gb").unwrap().clone()),
            ("x", plain.column("x").unwrap().clone()),
            ("k", plain.column("k").unwrap().clone()),
        ] {
            enc_rle
                .add_column(name, Column::rle_encode(&col).unwrap())
                .unwrap();
        }

        let queries = [
            FusedQuery {
                filter: vec![Expr::col("x").lt(Expr::lit(9.5))],
                sums: vec![Expr::col("x")],
                mins: vec![Expr::col("x")],
                maxs: vec![Expr::col("x")],
                group_by: GroupKey::Dense {
                    spec: GroupSpec {
                        a: "ga".into(),
                        b: "gb".into(),
                        encode: encode_low_bit,
                    },
                    groups: 4,
                },
            },
            FusedQuery {
                filter: vec![],
                sums: vec![Expr::col("x")],
                mins: vec![],
                maxs: vec![],
                group_by: GroupKey::HashPair {
                    a: "ga".into(),
                    b: "gb".into(),
                    hash: HashKind::Identity,
                },
            },
            FusedQuery {
                filter: vec![Expr::col("x").ge(Expr::lit(-7.0))],
                sums: vec![Expr::col("x")],
                mins: vec![],
                maxs: vec![],
                group_by: GroupKey::Hash {
                    col: "k".into(),
                    hash: HashKind::Identity,
                },
            },
        ];
        for (q, query) in queries.iter().enumerate() {
            for backend in [SumBackend::Double, SumBackend::ReproUnbuffered] {
                for (threads, batch_rows) in [(1, 4096), (1, 73), (4, 128)] {
                    let opts = ExecOptions {
                        threads,
                        batch_rows,
                        morsel_rows: 512,
                        ..ExecOptions::default()
                    };
                    let want = run_fused(&plain, query, backend, &opts).unwrap();
                    for (t, table) in [(0, &enc), (1, &enc_rle)] {
                        let got = run_fused(table, query, backend, &opts).unwrap();
                        assert_eq!(got.counts, want.counts, "q{q} {backend:?} {opts:?} t{t}");
                        assert_eq!(got.keys, want.keys, "q{q} {backend:?} {opts:?} t{t}");
                        for (arrays, ref_arrays) in [
                            (&got.sums, &want.sums),
                            (&got.mins, &want.mins),
                            (&got.maxs, &want.maxs),
                        ] {
                            for (a, (xs, ys)) in arrays.iter().zip(ref_arrays.iter()).enumerate() {
                                for (g, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
                                    assert_eq!(
                                        x.to_bits(),
                                        y.to_bits(),
                                        "q{q} {backend:?} {opts:?} t{t} agg {a} group {g}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Tentpole: bare-column SUM / MIN / MAX over RLE, `Dict` and `Dict16`
    /// inputs take the algebraic path — one deposit per value-run span,
    /// one per touched dictionary code — and must be bit-identical to the
    /// per-row path over the plain twin, across every grouping mode,
    /// backend, thread count and batch shape. `Double` is gated to the
    /// per-row path and must *also* match (the gate itself is under test).
    #[test]
    fn algebraic_deposits_match_per_row_bitwise() {
        let n = 12_000usize;
        let mut keys: Vec<(u8, u8, i32)> = (0..n)
            .map(|i| ((i % 3) as u8, (i % 5) as u8, (i % 31) as i32))
            .collect();
        keys.sort_unstable();
        let ga: Vec<u8> = keys.iter().map(|r| r.0).collect();
        let gb: Vec<u8> = keys.iter().map(|r| r.1).collect();
        let k: Vec<i32> = keys.iter().map(|r| r.2).collect();
        // Post-sort value with genuine runs (RLE), a 23-entry dictionary
        // (u8 codes) and a 300-entry dictionary (u16 codes). The odd
        // epsilon makes order-sensitivity visible if a path reorders.
        let v: Vec<f64> = (0..n)
            .map(|i| {
                let (a, b, _) = keys[i];
                a as f64 * 5.0 + b as f64 * 0.75 + ((i / 100) % 4) as f64 * 0.03125 - 6.0 + 2.5e-16
            })
            .collect();
        let vd: Vec<f64> = (0..n).map(|i| (i % 23) as f64 * 0.4375 - 4.0).collect();
        let vw: Vec<f64> = (0..n).map(|i| (i % 300) as f64 * 0.09375 - 13.0).collect();

        let mut plain = Table::new("t");
        let mut enc = Table::new("t");
        for (name, col) in [
            ("ga", Column::u8(ga)),
            ("gb", Column::u8(gb)),
            ("k", Column::i32(k)),
            ("v", Column::f64(v)),
            ("vd", Column::f64(vd)),
            ("vw", Column::f64(vw)),
        ] {
            let encoded = match name {
                "ga" | "gb" | "k" | "v" => Column::rle_encode(&col).unwrap(),
                _ => Column::dict_encode(&col).unwrap(),
            };
            enc.add_column(name, encoded).unwrap();
            plain.add_column(name, col).unwrap();
        }
        assert_eq!(enc.column("vd").unwrap().storage_name(), "Dict<F64>");
        assert_eq!(enc.column("vw").unwrap().storage_name(), "Dict16<F64>");

        let bare_aggs = |group_by: GroupKey| FusedQuery {
            filter: vec![Expr::col("k").ge(Expr::lit(3.0))],
            sums: vec![Expr::col("v"), Expr::col("vd"), Expr::col("vw")],
            mins: vec![Expr::col("v"), Expr::col("vw")],
            maxs: vec![Expr::col("vd")],
            group_by,
        };
        let queries = [
            bare_aggs(GroupKey::None),
            bare_aggs(GroupKey::Dense {
                spec: GroupSpec {
                    a: "ga".into(),
                    b: "gb".into(),
                    encode: encode_low_bit,
                },
                groups: 4,
            }),
            bare_aggs(GroupKey::Hash {
                col: "k".into(),
                hash: HashKind::Identity,
            }),
            bare_aggs(GroupKey::HashPair {
                a: "ga".into(),
                b: "gb".into(),
                hash: HashKind::Identity,
            }),
        ];
        for (q, query) in queries.iter().enumerate() {
            for backend in [
                SumBackend::Double,
                SumBackend::ReproUnbuffered,
                SumBackend::ReproBuffered { buffer_size: 64 },
                SumBackend::Rsum { levels: 2 },
                SumBackend::RsumBuffered {
                    levels: 3,
                    buffer_size: 32,
                },
            ] {
                for (threads, batch_rows) in [(1, 4096), (1, 73), (4, 128)] {
                    let opts = ExecOptions {
                        threads,
                        batch_rows,
                        morsel_rows: 512,
                        ..ExecOptions::default()
                    };
                    let want = run_fused(&plain, query, backend, &opts).unwrap();
                    let got = run_fused(&enc, query, backend, &opts).unwrap();
                    let tag = format!("q{q} {backend:?} t{threads} b{batch_rows}");
                    assert_eq!(got.counts, want.counts, "{tag}");
                    assert_eq!(got.keys, want.keys, "{tag}");
                    for (arrays, ref_arrays) in [
                        (&got.sums, &want.sums),
                        (&got.mins, &want.mins),
                        (&got.maxs, &want.maxs),
                    ] {
                        for (a, (xs, ys)) in arrays.iter().zip(ref_arrays.iter()).enumerate() {
                            for (g, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
                                assert_eq!(x.to_bits(), y.to_bits(), "{tag} agg {a} group {g}");
                            }
                        }
                    }
                }
            }
        }
    }

    /// Satellite: `Dict16` group keys — a wide-dictionary hash key column
    /// (1000 distinct `I32` keys, `u16` codes) and a hand-built
    /// `Dict16<U8>` dense key leg — group bit-identically to plain keys.
    #[test]
    fn dict16_group_keys_match_plain() {
        use std::sync::Arc;
        let n = 8_000usize;
        let k: Vec<i32> = (0..n).map(|i| (i * 7 % 1000) as i32).collect();
        let ga: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let gb: Vec<u8> = (0..n).map(|i| (i % 5) as u8).collect();
        let x: Vec<f64> = (0..n).map(|i| (i % 97) as f64 * 0.25 - 8.0).collect();

        let mut plain = Table::new("t");
        plain.add_column("k", Column::i32(k.clone())).unwrap();
        plain.add_column("ga", Column::u8(ga.clone())).unwrap();
        plain.add_column("gb", Column::u8(gb)).unwrap();
        plain.add_column("x", Column::f64(x.clone())).unwrap();

        let mut enc = Table::new("t");
        let k16 = Column::dict_encode(&Column::i32(k)).unwrap();
        assert_eq!(k16.storage_name(), "Dict16<I32>");
        enc.add_column("k", k16).unwrap();
        // dict_encode never widens a U8 dictionary past 256 entries, so
        // build the Dict16<U8> leg by hand (identity codes into a 3-entry
        // dictionary).
        enc.add_column(
            "ga",
            Column::dict16(
                Arc::new(ga.iter().map(|&a| a as u16).collect()),
                Column::u8(vec![0, 1, 2]),
            )
            .unwrap(),
        )
        .unwrap();
        enc.add_column("gb", plain.column("gb").unwrap().clone())
            .unwrap();
        enc.add_column("x", Column::f64(x)).unwrap();

        let queries = [
            FusedQuery {
                filter: vec![Expr::col("x").lt(Expr::lit(9.5))],
                sums: vec![Expr::col("x")],
                mins: vec![Expr::col("x")],
                maxs: vec![Expr::col("x")],
                group_by: GroupKey::Hash {
                    col: "k".into(),
                    hash: HashKind::Multiplicative,
                },
            },
            FusedQuery {
                filter: vec![],
                sums: vec![Expr::col("x")],
                mins: vec![],
                maxs: vec![],
                group_by: GroupKey::Dense {
                    spec: GroupSpec {
                        a: "ga".into(),
                        b: "gb".into(),
                        encode: encode_low_bit,
                    },
                    groups: 4,
                },
            },
            FusedQuery {
                filter: vec![],
                sums: vec![Expr::col("x")],
                mins: vec![],
                maxs: vec![],
                group_by: GroupKey::HashPair {
                    a: "ga".into(),
                    b: "gb".into(),
                    hash: HashKind::Identity,
                },
            },
        ];
        for (q, query) in queries.iter().enumerate() {
            for threads in [1usize, 4] {
                let opts = ExecOptions {
                    threads,
                    batch_rows: 129,
                    morsel_rows: 512,
                    ..ExecOptions::default()
                };
                let want = run_fused(&plain, query, SumBackend::ReproUnbuffered, &opts).unwrap();
                let got = run_fused(&enc, query, SumBackend::ReproUnbuffered, &opts).unwrap();
                assert_eq!(got.keys, want.keys, "q{q} t{threads}");
                assert_eq!(got.counts, want.counts, "q{q} t{threads}");
                for (a, b) in want.sums[0].iter().zip(got.sums[0].iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "q{q} t{threads}");
                }
            }
        }
    }

    /// When `groups × dictionary size` outgrows the flat histogram cap
    /// ([`ALG_HIST_MAX`]) the dictionary path falls back to per-row
    /// deposits for that batch — early small-group batches still take the
    /// algebraic path, so this exercises *mixed* batches, which must stay
    /// bit-identical because the deposit algebra is exact.
    #[test]
    fn dict_histogram_cap_falls_back_bitwise() {
        let n = 12_000usize;
        let k: Vec<i32> = (0..n).map(|i| (i % 1000) as i32).collect();
        // 6000 distinct values => Dict16; 1000 groups × 6000 codes = 6M
        // histogram entries, past the 4M cap.
        let vw: Vec<f64> = (0..n)
            .map(|i| (i % 6000) as f64 * 0.015625 - 42.0)
            .collect();
        let mut plain = Table::new("t");
        plain.add_column("k", Column::i32(k.clone())).unwrap();
        plain.add_column("vw", Column::f64(vw.clone())).unwrap();
        let mut enc = Table::new("t");
        enc.add_column("k", Column::i32(k)).unwrap();
        let dict = Column::dict_encode(&Column::f64(vw)).unwrap();
        assert_eq!(dict.storage_name(), "Dict16<F64>");
        assert!(1000 * dict.logical().len() > ALG_HIST_MAX);
        enc.add_column("vw", dict).unwrap();
        let query = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("vw")],
            mins: vec![Expr::col("vw")],
            maxs: vec![Expr::col("vw")],
            group_by: GroupKey::Hash {
                col: "k".into(),
                hash: HashKind::Identity,
            },
        };
        for threads in [1usize, 4] {
            let opts = ExecOptions {
                threads,
                batch_rows: 4096,
                morsel_rows: 4096,
                ..ExecOptions::default()
            };
            let want = run_fused(&plain, &query, SumBackend::ReproUnbuffered, &opts).unwrap();
            let got = run_fused(&enc, &query, SumBackend::ReproUnbuffered, &opts).unwrap();
            assert_eq!(got.keys, want.keys);
            assert_eq!(got.counts, want.counts);
            for arrays in [
                (&got.sums, &want.sums),
                (&got.mins, &want.mins),
                (&got.maxs, &want.maxs),
            ] {
                for (xs, ys) in arrays.0.iter().zip(arrays.1.iter()) {
                    for (x, y) in xs.iter().zip(ys.iter()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "t{threads}");
                    }
                }
            }
        }
    }

    /// Tentpole: a malformed encoding built around the validating
    /// constructors surfaces as the typed [`FusedError::Encoding`] before
    /// any batch is scanned — never a panic or an out-of-bounds read.
    #[test]
    fn malformed_encodings_are_typed_errors() {
        use crate::column::EncodingError;
        use std::sync::Arc;

        // Codes pointing past the dictionary.
        let mut t = Table::new("t");
        t.add_column(
            "x",
            Column::Dict {
                codes: Arc::new(vec![0, 1, 9]),
                dict: Box::new(Column::f64(vec![1.0, 2.0])),
            },
        )
        .unwrap();
        let q = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("x")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::None,
        };
        assert_eq!(
            run_fused(&t, &q, SumBackend::ReproUnbuffered, &ExecOptions::serial()).unwrap_err(),
            FusedError::Encoding {
                col: "x".into(),
                error: EncodingError::CodeOutOfRange {
                    code: 9,
                    dict_len: 2
                },
            }
        );

        // Run ends that never reach the column length (same logical len
        // as "ga" so add_column accepts it; the *invariant* is broken).
        let mut t = Table::new("t");
        t.add_column("v", Column::f64(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        t.add_column(
            "g",
            Column::Rle {
                run_ends: Arc::new(vec![2, 2, 4]),
                values: Box::new(Column::u8(vec![0, 1, 0])),
            },
        )
        .unwrap();
        let q = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("v")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::Hash {
                col: "g".into(),
                hash: HashKind::Identity,
            },
        };
        assert_eq!(
            run_fused(&t, &q, SumBackend::ReproUnbuffered, &ExecOptions::serial()).unwrap_err(),
            FusedError::Encoding {
                col: "g".into(),
                error: EncodingError::RunEndsNotIncreasing { index: 1 },
            }
        );
        // The pinned message names the column and the defect.
        assert_eq!(
            FusedError::Encoding {
                col: "g".into(),
                error: EncodingError::RunEndsNotIncreasing { index: 1 },
            }
            .to_string(),
            "column \"g\": run_ends must be strictly increasing (violated at run 1)"
        );
    }

    /// A deadline expires *mid-scan* (not just up front): a deliberately
    /// slow `encode` fn pushes execution past the budget and the next
    /// boundary check raises the typed error carrying the original budget.
    #[test]
    fn deadline_expiry_mid_scan_surfaces_typed_error() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        fn slow_encode(a: u8, b: u8) -> u32 {
            // ~1ms per 64-row batch: a 20k-row scan takes ~300ms, far past
            // the 10ms budget, so expiry is guaranteed to land mid-scan.
            if CALLS.fetch_add(1, Ordering::Relaxed).is_multiple_of(64) {
                std::thread::sleep(Duration::from_millis(1));
            }
            encode_low_bit(a, b)
        }
        let table = sample_table(20_000);
        let query = FusedQuery {
            filter: vec![],
            sums: vec![Expr::col("x")],
            mins: vec![],
            maxs: vec![],
            group_by: GroupKey::Dense {
                spec: GroupSpec {
                    a: "ga".into(),
                    b: "gb".into(),
                    encode: slow_encode,
                },
                groups: 4,
            },
        };
        let deadline = Duration::from_millis(10);
        let opts = ExecOptions {
            batch_rows: 64,
            deadline: Some(deadline),
            ..ExecOptions::default()
        };
        let err = run_fused(&table, &query, SumBackend::ReproUnbuffered, &opts).unwrap_err();
        assert_eq!(err, FusedError::DeadlineExceeded { deadline });
    }
}
