//! A small vectorized expression evaluator over table columns.
//!
//! The engine's queries (Q1, Q6) evaluate arithmetic expressions like
//! `l_extendedprice * (1 - l_discount) * (1 + l_tax)` over the selected
//! rows before aggregation. Expressions are *compiled* into a flat
//! stack-machine program ([`CompiledExpr`]) that evaluates batch-at-a-time
//! into reused scratch registers — the X100-style vectorized model — so a
//! scan never materializes one vector per AST node, and constants are
//! folded at compile time instead of being broadcast into n-sized vectors.
//!
//! Reproducibility note (paper footnote 3): an arithmetic expression
//! evaluated in its entirety per row is a fixed dag of roundings — itself
//! order-independent. Compilation preserves that dag exactly: constant
//! folding performs the same IEEE operation once at compile time that the
//! tree walk performed per row, and the fused `<op>Const` instructions
//! apply the identical operation with the identical operand order (addition
//! and multiplication are bitwise commutative in IEEE 754), so compiled
//! evaluation is bit-identical to the naïve tree walk. Only the subsequent
//! *aggregation* of the results needs the reproducible accumulator; this
//! module provides the deterministic per-row part.

use crate::column::{Table, TableError};

/// An arithmetic expression over `F64` columns and constants.
///
/// `PartialEq` is structural and *bitwise* on constants (`-0.0 ≠ 0.0`,
/// `NaN == NaN` — see the manual impl below): the plan layer uses it to
/// share one SUM state between `SUM(e)` and `AVG(e)` over the same
/// expression, and two expressions may only share a state when they
/// produce identical bits on every input.
#[derive(Clone, Debug)]
pub enum Expr {
    /// A named `F64` column.
    Col(&'static str),
    /// A constant.
    Const(f64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

/// Structural equality with *bit* comparison on constants. The derived
/// impl would use IEEE `==`, under which `lit(0.0) == lit(-0.0)` (they
/// produce different result bits under multiplication) and
/// `lit(NAN) != lit(NAN)` (defeating state sharing) — both wrong for the
/// plan layer's "identical bits on every input" interning contract.
impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Expr::Col(a), Expr::Col(b)) => a == b,
            (Expr::Const(a), Expr::Const(b)) => a.to_bits() == b.to_bits(),
            (Expr::Add(a1, b1), Expr::Add(a2, b2))
            | (Expr::Sub(a1, b1), Expr::Sub(a2, b2))
            | (Expr::Mul(a1, b1), Expr::Mul(a2, b2)) => a1 == a2 && b1 == b2,
            _ => false,
        }
    }
}

/// One instruction of a compiled expression (operating on a virtual stack
/// of batch-sized registers).
#[derive(Clone, Copy, Debug)]
enum Inst {
    /// Push a gather of column `cols[i]` through the selection vector.
    Col(usize),
    /// Push a broadcast constant (only reachable for expressions that are
    /// entirely constant; mixed const/column nodes compile to the fused
    /// `*Const` forms below).
    Const(f64),
    /// Pop b, pop a, push a ⊕ b.
    Add,
    Sub,
    Mul,
    /// Fused constant operand: top = top + c.
    AddConst(f64),
    /// top = top - c.
    SubConst(f64),
    /// top = c - top.
    ConstSub(f64),
    /// top = top * c.
    MulConst(f64),
}

/// A compiled expression: a flat postfix program plus the column names it
/// references. Compile once per query, bind per table, evaluate per batch.
#[derive(Clone, Debug)]
pub struct CompiledExpr {
    insts: Vec<Inst>,
    cols: Vec<&'static str>,
    depth: usize,
}

/// A compiled expression bound to one table's column storage.
pub struct BoundExpr<'t> {
    insts: &'t [Inst],
    cols: Vec<&'t [f64]>,
    depth: usize,
}

/// Reusable batch-sized evaluation registers. One scratch serves any
/// number of expressions and batches; registers grow to the deepest
/// expression and widest batch seen and are then reused allocation-free.
#[derive(Default)]
pub struct EvalScratch {
    regs: Vec<Vec<f64>>,
}

impl EvalScratch {
    pub fn new() -> Self {
        EvalScratch::default()
    }

    fn ensure(&mut self, depth: usize, rows: usize) {
        if self.regs.len() < depth {
            self.regs.resize_with(depth, Vec::new);
        }
        for r in &mut self.regs[..depth] {
            if r.len() < rows {
                r.resize(rows, 0.0);
            }
        }
    }
}

// Builder methods intentionally mirror operator names (`add`/`sub`/`mul`
// build AST nodes; they are not the std operator traits).
#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn col(name: &'static str) -> Expr {
        Expr::Col(name)
    }

    pub fn lit(v: f64) -> Expr {
        Expr::Const(v)
    }

    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Value of a constant subtree, if the whole subtree is constant.
    fn const_value(&self) -> Option<f64> {
        match self {
            Expr::Const(v) => Some(*v),
            Expr::Col(_) => None,
            Expr::Add(a, b) => Some(a.const_value()? + b.const_value()?),
            Expr::Sub(a, b) => Some(a.const_value()? - b.const_value()?),
            Expr::Mul(a, b) => Some(a.const_value()? * b.const_value()?),
        }
    }

    /// Compiles the expression to a register program with constant
    /// subtrees folded and constant operands fused into their consumer.
    pub fn compile(&self) -> CompiledExpr {
        let mut insts = Vec::new();
        let mut cols = Vec::new();
        emit(self, &mut insts, &mut cols);
        // Stack depth of the postfix program (for scratch sizing).
        let (mut sp, mut depth) = (0usize, 0usize);
        for inst in &insts {
            match inst {
                Inst::Col(_) | Inst::Const(_) => {
                    sp += 1;
                    depth = depth.max(sp);
                }
                Inst::Add | Inst::Sub | Inst::Mul => sp -= 1,
                _ => {} // fused-constant forms operate on the top in place
            }
        }
        debug_assert_eq!(sp, 1);
        CompiledExpr { insts, cols, depth }
    }

    /// Evaluates over the rows of `sel` (a selection vector of row ids),
    /// returning one value per selected row.
    ///
    /// This is the materializing convenience wrapper around the compiled
    /// evaluator: it allocates only the output vector (plus batch-sized
    /// scratch), never a vector per AST node.
    pub fn eval(&self, table: &Table, sel: &[u32]) -> Result<Vec<f64>, TableError> {
        let compiled = self.compile();
        let bound = compiled.bind(table)?;
        let mut out = vec![0.0f64; sel.len()];
        let mut scratch = EvalScratch::new();
        for (schunk, ochunk) in sel
            .chunks(EVAL_BATCH_ROWS)
            .zip(out.chunks_mut(EVAL_BATCH_ROWS))
        {
            bound.eval_into(schunk, &mut scratch, ochunk);
        }
        Ok(out)
    }
}

/// Batch width of the materializing [`Expr::eval`] wrapper (the fused
/// pipeline chooses its own batch size).
const EVAL_BATCH_ROWS: usize = 4096;

fn col_index(cols: &mut Vec<&'static str>, name: &'static str) -> usize {
    if let Some(i) = cols.iter().position(|&c| c == name) {
        i
    } else {
        cols.push(name);
        cols.len() - 1
    }
}

fn emit(e: &Expr, insts: &mut Vec<Inst>, cols: &mut Vec<&'static str>) {
    if let Some(v) = e.const_value() {
        insts.push(Inst::Const(v));
        return;
    }
    match e {
        Expr::Const(_) => unreachable!("handled by const_value"),
        Expr::Col(name) => insts.push(Inst::Col(col_index(cols, name))),
        Expr::Add(a, b) => emit_bin(a, b, BinOp::Add, insts, cols),
        Expr::Sub(a, b) => emit_bin(a, b, BinOp::Sub, insts, cols),
        Expr::Mul(a, b) => emit_bin(a, b, BinOp::Mul, insts, cols),
    }
}

#[derive(Clone, Copy)]
enum BinOp {
    Add,
    Sub,
    Mul,
}

fn emit_bin(a: &Expr, b: &Expr, op: BinOp, insts: &mut Vec<Inst>, cols: &mut Vec<&'static str>) {
    match (a.const_value(), b.const_value()) {
        // Both-const is folded one level up in `emit`.
        (Some(c), None) => {
            emit(b, insts, cols);
            insts.push(match op {
                // c + x == x + c and c * x == x * c bitwise (IEEE 754
                // addition/multiplication are commutative).
                BinOp::Add => Inst::AddConst(c),
                BinOp::Sub => Inst::ConstSub(c),
                BinOp::Mul => Inst::MulConst(c),
            });
        }
        (None, Some(c)) => {
            emit(a, insts, cols);
            insts.push(match op {
                BinOp::Add => Inst::AddConst(c),
                BinOp::Sub => Inst::SubConst(c),
                BinOp::Mul => Inst::MulConst(c),
            });
        }
        _ => {
            emit(a, insts, cols);
            emit(b, insts, cols);
            insts.push(match op {
                BinOp::Add => Inst::Add,
                BinOp::Sub => Inst::Sub,
                BinOp::Mul => Inst::Mul,
            });
        }
    }
}

impl CompiledExpr {
    /// Resolves the referenced columns against a table. The borrowed view
    /// is cheap to build (per query, per morsel): binding copies no data.
    /// Missing *and* mistyped columns surface as [`TableError`]s — this is
    /// the check the plan layer validates aggregate expressions with.
    pub fn bind<'t>(&'t self, table: &'t Table) -> Result<BoundExpr<'t>, TableError> {
        let mut cols = Vec::with_capacity(self.cols.len());
        for name in &self.cols {
            cols.push(table.f64s(name)?);
        }
        Ok(BoundExpr {
            insts: &self.insts,
            cols,
            depth: self.depth,
        })
    }
}

impl BoundExpr<'_> {
    /// Evaluates one batch: `out[k] = expr(row sel[k])` for every selected
    /// row. All intermediates live in `scratch`; nothing is allocated once
    /// the scratch has warmed up to this depth and batch size.
    pub fn eval_into(&self, sel: &[u32], scratch: &mut EvalScratch, out: &mut [f64]) {
        let n = sel.len();
        debug_assert_eq!(n, out.len());
        scratch.ensure(self.depth.max(1), n);
        let mut sp = 0usize;
        for inst in self.insts {
            match *inst {
                Inst::Col(c) => {
                    let col = self.cols[c];
                    for (r, &i) in scratch.regs[sp][..n].iter_mut().zip(sel) {
                        *r = col[i as usize];
                    }
                    sp += 1;
                }
                Inst::Const(v) => {
                    scratch.regs[sp][..n].fill(v);
                    sp += 1;
                }
                Inst::Add => {
                    sp -= 1;
                    let (lo, hi) = scratch.regs.split_at_mut(sp);
                    for (a, &b) in lo[sp - 1][..n].iter_mut().zip(&hi[0][..n]) {
                        *a += b;
                    }
                }
                Inst::Sub => {
                    sp -= 1;
                    let (lo, hi) = scratch.regs.split_at_mut(sp);
                    for (a, &b) in lo[sp - 1][..n].iter_mut().zip(&hi[0][..n]) {
                        *a -= b;
                    }
                }
                Inst::Mul => {
                    sp -= 1;
                    let (lo, hi) = scratch.regs.split_at_mut(sp);
                    for (a, &b) in lo[sp - 1][..n].iter_mut().zip(&hi[0][..n]) {
                        *a *= b;
                    }
                }
                Inst::AddConst(c) => {
                    for a in &mut scratch.regs[sp - 1][..n] {
                        *a += c;
                    }
                }
                Inst::SubConst(c) => {
                    for a in &mut scratch.regs[sp - 1][..n] {
                        *a -= c;
                    }
                }
                Inst::ConstSub(c) => {
                    for a in &mut scratch.regs[sp - 1][..n] {
                        *a = c - *a;
                    }
                }
                Inst::MulConst(c) => {
                    for a in &mut scratch.regs[sp - 1][..n] {
                        *a *= c;
                    }
                }
            }
        }
        debug_assert_eq!(sp, 1);
        out.copy_from_slice(&scratch.regs[0][..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table() -> Table {
        let mut t = Table::new("t");
        t.add_column("price", Column::f64(vec![100.0, 200.0, 300.0]))
            .unwrap();
        t.add_column("disc", Column::f64(vec![0.1, 0.0, 0.5]))
            .unwrap();
        t
    }

    #[test]
    fn evaluates_q1_style_expression() {
        let t = table();
        // price * (1 - disc)
        let e = Expr::col("price").mul(Expr::lit(1.0).sub(Expr::col("disc")));
        let out = e.eval(&t, &[0, 1, 2]).unwrap();
        assert_eq!(out, vec![90.0, 200.0, 150.0]);
    }

    #[test]
    fn respects_selection_vector() {
        let t = table();
        let e = Expr::col("price").add(Expr::lit(1.0));
        assert_eq!(e.eval(&t, &[2, 0]).unwrap(), vec![301.0, 101.0]);
        assert_eq!(e.eval(&t, &[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn missing_column_errors() {
        let t = table();
        let e = Expr::col("nope");
        assert!(e.eval(&t, &[0]).is_err());
    }

    #[test]
    fn mistyped_column_errors_instead_of_panicking() {
        let mut t = table();
        t.add_column("days", Column::i32(vec![1, 2, 3])).unwrap();
        let e = Expr::col("days").add(Expr::lit(1.0));
        assert!(matches!(
            e.eval(&t, &[0]).unwrap_err(),
            crate::column::TableError::TypeMismatch {
                expected: "F64",
                ..
            }
        ));
    }

    #[test]
    fn structural_equality_for_state_sharing() {
        let a = || Expr::col("price").mul(Expr::lit(1.0).sub(Expr::col("disc")));
        assert_eq!(a(), a());
        assert_ne!(a(), Expr::col("price"));
        assert_ne!(Expr::lit(1.0), Expr::lit(2.0));
        // Bitwise on constants: ±0.0 differ (x * -0.0 and x * 0.0 round
        // to different bits for negative x), NaN literals match.
        assert_ne!(Expr::lit(0.0), Expr::lit(-0.0));
        assert_eq!(Expr::lit(f64::NAN), Expr::lit(f64::NAN));
    }

    #[test]
    fn evaluation_is_row_order_deterministic() {
        // Same row through different selection orders: identical bits
        // (footnote 3: whole-expression evaluation is reproducible).
        let t = table();
        let e = Expr::col("price")
            .mul(Expr::col("disc"))
            .add(Expr::lit(0.1));
        let a = e.eval(&t, &[0, 1, 2]).unwrap();
        let b = e.eval(&t, &[2, 1, 0]).unwrap();
        assert_eq!(a[0].to_bits(), b[2].to_bits());
        assert_eq!(a[2].to_bits(), b[0].to_bits());
    }

    #[test]
    fn constant_subtrees_fold_to_a_single_instruction() {
        // (2 + 3) * (10 - 4) is entirely constant: one Const instruction,
        // no per-node vectors anywhere.
        let e = Expr::lit(2.0)
            .add(Expr::lit(3.0))
            .mul(Expr::lit(10.0).sub(Expr::lit(4.0)));
        let c = e.compile();
        assert_eq!(c.insts.len(), 1);
        assert!(matches!(c.insts[0], Inst::Const(v) if v == 30.0));
        let t = table();
        assert_eq!(e.eval(&t, &[0, 1]).unwrap(), vec![30.0, 30.0]);
    }

    #[test]
    fn constant_operands_fuse_without_extra_registers() {
        // price * (1 - disc) * (1 + 0.5): depth 2, and the constant
        // subexpression (1 + 0.5) folds into a MulConst.
        let e = Expr::col("price")
            .mul(Expr::lit(1.0).sub(Expr::col("disc")))
            .mul(Expr::lit(1.0).add(Expr::lit(0.5)));
        let c = e.compile();
        assert_eq!(c.depth, 2);
        assert!(c
            .insts
            .iter()
            .any(|i| matches!(i, Inst::MulConst(v) if *v == 1.5)));
        let out = e.eval(&table(), &[0, 1, 2]).unwrap();
        assert_eq!(out, vec![135.0, 300.0, 225.0]);
    }

    #[test]
    fn compiled_eval_is_bit_identical_to_tree_semantics() {
        // Hand-evaluate the Q1 charge expression per row and compare bits:
        // the compiled program must perform the identical rounding dag.
        let mut t = Table::new("l");
        let price = vec![1234.567, 9.25e4, 3.0e-3, 7777.125];
        let disc = vec![0.03, 0.1, 0.07, 0.0];
        let tax = vec![0.02, 0.08, 0.0, 0.05];
        t.add_column("p", Column::f64(price.clone())).unwrap();
        t.add_column("d", Column::f64(disc.clone())).unwrap();
        t.add_column("t", Column::f64(tax.clone())).unwrap();
        let e = Expr::col("p")
            .mul(Expr::lit(1.0).sub(Expr::col("d")))
            .mul(Expr::lit(1.0).add(Expr::col("t")));
        let out = e.eval(&t, &[0, 1, 2, 3]).unwrap();
        for i in 0..4 {
            let reference = price[i] * (1.0 - disc[i]) * (1.0 + tax[i]);
            assert_eq!(out[i].to_bits(), reference.to_bits(), "row {i}");
        }
    }

    #[test]
    fn scratch_is_reused_across_expressions_and_batches() {
        let t = table();
        let e1 = Expr::col("price").mul(Expr::col("disc")).compile();
        let e2 = Expr::col("price")
            .sub(Expr::col("disc").mul(Expr::lit(2.0)))
            .compile();
        let b1 = e1.bind(&t).unwrap();
        let b2 = e2.bind(&t).unwrap();
        let mut scratch = EvalScratch::new();
        let mut out = [0.0f64; 2];
        b1.eval_into(&[0, 2], &mut scratch, &mut out);
        assert_eq!(out, [10.0, 150.0]);
        b2.eval_into(&[1, 0], &mut scratch, &mut out);
        assert_eq!(out, [200.0, 99.8]);
        // Smaller batch after a larger one still evaluates correctly.
        let mut one = [0.0f64; 1];
        b1.eval_into(&[1], &mut scratch, &mut one);
        assert_eq!(one, [0.0]);
    }
}
