//! A small vectorized expression evaluator over table columns.
//!
//! The engine's queries (Q1, Q6) evaluate arithmetic expressions like
//! `l_extendedprice * (1 - l_discount) * (1 + l_tax)` over the selected
//! rows before aggregation. Expressions evaluate column-at-a-time into
//! materialized vectors (the MonetDB execution model).
//!
//! Reproducibility note (paper footnote 3): an arithmetic expression
//! evaluated in its entirety per row is a fixed dag of roundings — itself
//! order-independent. Only the subsequent *aggregation* of the results
//! needs the reproducible accumulator; this module provides the
//! deterministic per-row part.

use crate::column::{Table, TableError};

/// An arithmetic expression over `F64` columns and constants.
#[derive(Clone, Debug)]
pub enum Expr {
    /// A named `F64` column.
    Col(&'static str),
    /// A constant.
    Const(f64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

// Builder methods intentionally mirror operator names (`add`/`sub`/`mul`
// build AST nodes; they are not the std operator traits).
#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn col(name: &'static str) -> Expr {
        Expr::Col(name)
    }

    pub fn lit(v: f64) -> Expr {
        Expr::Const(v)
    }

    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Evaluates over the rows of `sel` (a selection vector of row ids),
    /// returning one value per selected row.
    pub fn eval(&self, table: &Table, sel: &[u32]) -> Result<Vec<f64>, TableError> {
        match self {
            Expr::Col(name) => {
                let col = table.column(name)?.as_f64();
                Ok(sel.iter().map(|&i| col[i as usize]).collect())
            }
            Expr::Const(v) => Ok(vec![*v; sel.len()]),
            Expr::Add(a, b) => Ok(zip(a.eval(table, sel)?, b.eval(table, sel)?, |x, y| x + y)),
            Expr::Sub(a, b) => Ok(zip(a.eval(table, sel)?, b.eval(table, sel)?, |x, y| x - y)),
            Expr::Mul(a, b) => Ok(zip(a.eval(table, sel)?, b.eval(table, sel)?, |x, y| x * y)),
        }
    }
}

fn zip(a: Vec<f64>, b: Vec<f64>, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table() -> Table {
        let mut t = Table::new("t");
        t.add_column("price", Column::F64(vec![100.0, 200.0, 300.0]))
            .unwrap();
        t.add_column("disc", Column::F64(vec![0.1, 0.0, 0.5]))
            .unwrap();
        t
    }

    #[test]
    fn evaluates_q1_style_expression() {
        let t = table();
        // price * (1 - disc)
        let e = Expr::col("price").mul(Expr::lit(1.0).sub(Expr::col("disc")));
        let out = e.eval(&t, &[0, 1, 2]).unwrap();
        assert_eq!(out, vec![90.0, 200.0, 150.0]);
    }

    #[test]
    fn respects_selection_vector() {
        let t = table();
        let e = Expr::col("price").add(Expr::lit(1.0));
        assert_eq!(e.eval(&t, &[2, 0]).unwrap(), vec![301.0, 101.0]);
        assert_eq!(e.eval(&t, &[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn missing_column_errors() {
        let t = table();
        let e = Expr::col("nope");
        assert!(e.eval(&t, &[0]).is_err());
    }

    #[test]
    fn evaluation_is_row_order_deterministic() {
        // Same row through different selection orders: identical bits
        // (footnote 3: whole-expression evaluation is reproducible).
        let t = table();
        let e = Expr::col("price")
            .mul(Expr::col("disc"))
            .add(Expr::lit(0.1));
        let a = e.eval(&t, &[0, 1, 2]).unwrap();
        let b = e.eval(&t, &[2, 1, 0]).unwrap();
        assert_eq!(a[0].to_bits(), b[2].to_bits());
        assert_eq!(a[2].to_bits(), b[0].to_bits());
    }
}
