//! The typed vectorized expression layer: scalar arithmetic *and* boolean
//! predicates over table columns, compiled to one batchwise register
//! machine.
//!
//! The engine's queries evaluate arithmetic expressions like
//! `l_extendedprice * (1 - l_discount) * (1 + l_tax)` over the selected
//! rows before aggregation, and boolean predicates like
//! `l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24` to build the
//! selection vectors in the first place. Both are *compiled* into flat
//! stack-machine programs ([`CompiledExpr`] / [`CompiledPredicate`]) that
//! evaluate batch-at-a-time into reused scratch registers — the
//! X100-style vectorized model — so a scan never materializes one vector
//! per AST node, and constants are folded at compile time instead of
//! being broadcast into n-sized vectors.
//!
//! **Types.** A scalar [`Expr`] references columns by [`ColRef`] (owned
//! names, so runtime-defined SQL schemas resolve) and may read any
//! numeric column — `F64`, `I32`, `U32` or `U8`. Non-F64 columns are
//! widened to `f64` at gather time; every one of those integer types
//! converts *exactly* (f64 has 53 mantissa bits), so arithmetic and
//! comparisons over them are bit-deterministic regardless of the storage
//! type. The boolean subset ([`BoolExpr`]) wraps comparisons of scalar
//! expressions ([`CmpOp`], `BETWEEN`) composed with `AND`/`OR`/`NOT`;
//! comparisons compile to instructions producing *masks* (one byte per
//! row) on a second register stack of the same machine.
//!
//! **Predicates stay branchless.** A compiled predicate filters a batch
//! by evaluating its mask and compacting the selection vector with the
//! X100 increment-by-predicate idiom (no per-row branch). The common
//! single-comparison shapes — `col ⟨cmp⟩ const` and
//! `col BETWEEN const AND const` — additionally carry a fast path that
//! tests rows directly against the typed column (`i32` bounds compare in
//! the integer domain), skipping mask materialization entirely; this is
//! exactly what the engine's former closed `Pred` enum hard-coded, now
//! reconstructed automatically from composable expressions.
//!
//! Reproducibility note (paper footnote 3): an arithmetic expression
//! evaluated in its entirety per row is a fixed dag of roundings — itself
//! order-independent. Compilation preserves that dag exactly: constant
//! folding performs the same IEEE operation once at compile time that the
//! tree walk performed per row, and the fused `<op>Const` instructions
//! apply the identical operation with the identical operand order
//! (addition and multiplication are bitwise commutative in IEEE 754;
//! subtraction and division keep distinct `SubConst`/`ConstSub` and
//! `DivConst`/`ConstDiv` forms because they are not), so compiled
//! evaluation is bit-identical to the naïve tree walk. Only the
//! subsequent *aggregation* of the results needs the reproducible
//! accumulator; this module provides the deterministic per-row part.

use crate::column::{ColRef, Column, Table, TableError};

/// The `expected` tag of [`TableError::TypeMismatch`] raised when an
/// expression references a column whose storage type cannot be read as a
/// scalar (today only `F32` — every other column type widens exactly).
pub const NUMERIC_EXPECTED: &str = "F64, I32, U32 or U8";

/// An arithmetic expression over numeric columns and constants.
///
/// `PartialEq` is structural and *bitwise* on constants (`-0.0 ≠ 0.0`,
/// `NaN == NaN` — see the manual impl below): the plan layer uses it to
/// share one SUM state between `SUM(e)` and `AVG(e)` over the same
/// expression, and two expressions may only share a state when they
/// produce identical bits on every input. Column references compare by
/// name, so two independently parsed SQL strings intern states together.
#[derive(Clone, Debug)]
pub enum Expr {
    /// A named numeric column (`F64`, `I32`, `U32` or `U8`; integer
    /// storage widens exactly to `f64` at gather time).
    Col(ColRef),
    /// A constant.
    Const(f64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    /// IEEE negation (sign-bit flip; *not* `0 - x`, which differs on
    /// zeros: `0.0 - 0.0 == +0.0` while `-(+0.0) == -0.0`).
    Neg(Box<Expr>),
}

/// Structural equality with *bit* comparison on constants. The derived
/// impl would use IEEE `==`, under which `lit(0.0) == lit(-0.0)` (they
/// produce different result bits under multiplication) and
/// `lit(NAN) != lit(NAN)` (defeating state sharing) — both wrong for the
/// plan layer's "identical bits on every input" interning contract.
impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Expr::Col(a), Expr::Col(b)) => a == b,
            (Expr::Const(a), Expr::Const(b)) => a.to_bits() == b.to_bits(),
            (Expr::Add(a1, b1), Expr::Add(a2, b2))
            | (Expr::Sub(a1, b1), Expr::Sub(a2, b2))
            | (Expr::Mul(a1, b1), Expr::Mul(a2, b2))
            | (Expr::Div(a1, b1), Expr::Div(a2, b2)) => a1 == a2 && b1 == b2,
            (Expr::Neg(a), Expr::Neg(b)) => a == b,
            _ => false,
        }
    }
}

/// A comparison operator of the boolean expression layer. Comparisons
/// follow IEEE semantics on the widened `f64` values (`NaN` compares
/// false under everything except `Ne`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Mirror image: `c ⟨op⟩ x ⇔ x ⟨op.flip()⟩ c` (used to normalize
    /// constant-on-the-left comparisons).
    pub(crate) fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    #[inline]
    pub(crate) fn test<T: Copy + PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// The operator's SQL spelling (`<>` for `Ne`).
    pub fn sql_token(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
        }
    }
}

/// A boolean expression over scalar [`Expr`]s: the composable predicate
/// language the scan filter runs. `BETWEEN` is inclusive on both ends
/// (SQL semantics). Equality is structural with bitwise constants,
/// inherited from [`Expr`].
#[derive(Clone, Debug, PartialEq)]
pub enum BoolExpr {
    /// `lhs ⟨op⟩ rhs`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `lo <= e <= hi` (both ends inclusive).
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    Not(Box<BoolExpr>),
}

/// One instruction of a compiled program, operating on a virtual stack of
/// batch-sized scalar registers plus a second stack of mask registers
/// (comparisons pop scalars and push masks; `And`/`Or`/`Not` combine
/// masks).
#[derive(Clone, Debug)]
enum Inst {
    /// Push a gather of column `cols[i]` through the selection vector
    /// (integer columns widen exactly to `f64`).
    Col(usize),
    /// Push a broadcast constant (only reachable for expressions that are
    /// entirely constant; mixed const/column nodes compile to the fused
    /// `*Const` forms below).
    Const(f64),
    /// Pop b, pop a, push a ⊕ b.
    Add,
    Sub,
    Mul,
    Div,
    /// Fused constant operand: top = top + c.
    AddConst(f64),
    /// top = top - c.
    SubConst(f64),
    /// top = c - top.
    ConstSub(f64),
    /// top = top * c.
    MulConst(f64),
    /// top = top / c.
    DivConst(f64),
    /// top = c / top.
    ConstDiv(f64),
    /// top = -top (sign flip).
    Neg,
    /// Pop scalar b, pop scalar a, push mask a ⟨op⟩ b.
    Cmp(CmpOp),
    /// Pop scalar a, push mask a ⟨op⟩ c.
    CmpConst(CmpOp, f64),
    /// Pop scalar a, push mask (lo <= a) & (a <= hi).
    BetweenConst(f64, f64),
    /// Push a constant mask (a fully folded comparison).
    MaskConst(bool),
    /// Pop mask b, pop mask a, push a & b.
    And,
    /// Pop mask b, pop mask a, push a | b.
    Or,
    /// top-of-mask = !top-of-mask.
    Not,
}

/// A compiled program: flat postfix instructions plus the column names it
/// references and the register depths it needs.
#[derive(Clone, Debug)]
struct Prog {
    insts: Vec<Inst>,
    cols: Vec<ColRef>,
    scalar_depth: usize,
    mask_depth: usize,
}

impl Prog {
    fn new(insts: Vec<Inst>, cols: Vec<ColRef>) -> Prog {
        let (mut ssp, mut sdepth) = (0usize, 0usize);
        let (mut msp, mut mdepth) = (0usize, 0usize);
        for inst in &insts {
            match inst {
                Inst::Col(_) | Inst::Const(_) => {
                    ssp += 1;
                    sdepth = sdepth.max(ssp);
                }
                Inst::Add | Inst::Sub | Inst::Mul | Inst::Div => ssp -= 1,
                Inst::AddConst(_)
                | Inst::SubConst(_)
                | Inst::ConstSub(_)
                | Inst::MulConst(_)
                | Inst::DivConst(_)
                | Inst::ConstDiv(_)
                | Inst::Neg => {} // operate on the scalar top in place
                Inst::Cmp(_) => {
                    ssp -= 2;
                    msp += 1;
                    mdepth = mdepth.max(msp);
                }
                Inst::CmpConst(..) | Inst::BetweenConst(..) => {
                    ssp -= 1;
                    msp += 1;
                    mdepth = mdepth.max(msp);
                }
                Inst::MaskConst(_) => {
                    msp += 1;
                    mdepth = mdepth.max(msp);
                }
                Inst::And | Inst::Or => msp -= 1,
                Inst::Not => {} // mask top in place
            }
        }
        // Every well-formed program leaves exactly one result: a scalar
        // (expressions) or a mask (predicates). A future emit bug would
        // otherwise silently read a stale register.
        debug_assert_eq!(ssp + msp, 1, "unbalanced program");
        Prog {
            insts,
            cols,
            scalar_depth: sdepth,
            mask_depth: mdepth,
        }
    }

    /// Resolves the referenced columns against a table. Missing columns
    /// and non-numeric storage surface as [`TableError`]s.
    fn bind<'t>(&'t self, table: &'t Table) -> Result<BoundProg<'t>, TableError> {
        let mut cols = Vec::with_capacity(self.cols.len());
        for name in &self.cols {
            cols.push(bind_numeric(table, name)?);
        }
        Ok(BoundProg {
            insts: &self.insts,
            cols,
            scalar_depth: self.scalar_depth,
            mask_depth: self.mask_depth,
        })
    }
}

/// A numeric column bound for gathering: integer storage widens exactly
/// to `f64` (i32/u32/u8 all fit in the 53-bit mantissa). Encoded columns
/// gather *through* their encoding — a code lookup for `Dict`, a run
/// cursor for `Rle` — never materializing the plain column; widening the
/// dictionary/run value is the identical exact conversion the plain
/// column would perform per row, so results are bit-identical.
#[derive(Clone, Copy)]
enum ColData<'t> {
    F64(&'t [f64]),
    I32(&'t [i32]),
    U32(&'t [u32]),
    U8(&'t [u8]),
    Dict { codes: &'t [u8], vals: Vals<'t> },
    Dict16 { codes: &'t [u16], vals: Vals<'t> },
    Rle { run_ends: &'t [u32], vals: Vals<'t> },
}

/// The small value array behind an encoding (a dictionary or the per-run
/// values), read as widened `f64`. The per-row `match` is perfectly
/// predicted (same arm every iteration of a gather loop).
#[derive(Clone, Copy)]
enum Vals<'t> {
    F64(&'t [f64]),
    I32(&'t [i32]),
    U32(&'t [u32]),
    U8(&'t [u8]),
}

impl Vals<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match *self {
            Vals::F64(v) => v[i],
            Vals::I32(v) => v[i] as f64,
            Vals::U32(v) => v[i] as f64,
            Vals::U8(v) => v[i] as f64,
        }
    }
}

/// Index of the run containing `row`, given the previous position `run`
/// (amortized O(1) for the increasing row sequences selection vectors
/// produce; an out-of-order row resets by binary search). Shared with the
/// fused executor's RLE group-key cursors.
#[inline]
pub(crate) fn advance_run(run_ends: &[u32], run: usize, row: u32) -> usize {
    if run > 0 && row < run_ends[run - 1] {
        return run_ends.partition_point(|&e| e <= row);
    }
    let mut run = run;
    while run_ends[run] <= row {
        run += 1;
    }
    run
}

impl ColData<'_> {
    #[inline]
    fn gather(&self, sel: &[u32], out: &mut [f64]) {
        match *self {
            ColData::F64(col) => {
                for (r, &i) in out.iter_mut().zip(sel) {
                    *r = col[i as usize];
                }
            }
            ColData::I32(col) => {
                for (r, &i) in out.iter_mut().zip(sel) {
                    *r = col[i as usize] as f64;
                }
            }
            ColData::U32(col) => {
                for (r, &i) in out.iter_mut().zip(sel) {
                    *r = col[i as usize] as f64;
                }
            }
            ColData::U8(col) => {
                for (r, &i) in out.iter_mut().zip(sel) {
                    *r = col[i as usize] as f64;
                }
            }
            ColData::Dict { codes, vals } => {
                for (r, &i) in out.iter_mut().zip(sel) {
                    *r = vals.get(codes[i as usize] as usize);
                }
            }
            ColData::Dict16 { codes, vals } => {
                for (r, &i) in out.iter_mut().zip(sel) {
                    *r = vals.get(codes[i as usize] as usize);
                }
            }
            ColData::Rle { run_ends, vals } => {
                let mut run = 0usize;
                for (r, &i) in out.iter_mut().zip(sel) {
                    run = advance_run(run_ends, run, i);
                    *r = vals.get(run);
                }
            }
        }
    }
}

/// Reads a *plain* column as a [`Vals`] view (the dictionary / run-values
/// leg of an encoding; nesting is rejected at construction).
fn vals_of<'t>(col: &'t Column, name: &ColRef) -> Result<Vals<'t>, TableError> {
    match col {
        Column::F64(v) => Ok(Vals::F64(v)),
        Column::I32(v) => Ok(Vals::I32(v)),
        Column::U32(v) => Ok(Vals::U32(v)),
        Column::U8(v) => Ok(Vals::U8(v)),
        other => Err(TableError::TypeMismatch {
            column: name.to_string(),
            expected: NUMERIC_EXPECTED,
            found: other.type_name(),
        }),
    }
}

fn bind_numeric<'t>(table: &'t Table, name: &ColRef) -> Result<ColData<'t>, TableError> {
    match table.column(name.as_str())? {
        Column::F64(v) => Ok(ColData::F64(v)),
        Column::I32(v) => Ok(ColData::I32(v)),
        Column::U32(v) => Ok(ColData::U32(v)),
        Column::U8(v) => Ok(ColData::U8(v)),
        Column::Dict { codes, dict } => Ok(ColData::Dict {
            codes,
            vals: vals_of(dict, name)?,
        }),
        Column::Dict16 { codes, dict } => Ok(ColData::Dict16 {
            codes,
            vals: vals_of(dict, name)?,
        }),
        Column::Rle { run_ends, values } => Ok(ColData::Rle {
            run_ends,
            vals: vals_of(values, name)?,
        }),
        other => Err(TableError::TypeMismatch {
            column: name.to_string(),
            expected: NUMERIC_EXPECTED,
            found: other.type_name(),
        }),
    }
}

/// A compiled program bound to one table's column storage.
struct BoundProg<'t> {
    insts: &'t [Inst],
    cols: Vec<ColData<'t>>,
    scalar_depth: usize,
    mask_depth: usize,
}

/// A compiled scalar expression: compile once per query, bind per table,
/// evaluate per batch.
#[derive(Clone, Debug)]
pub struct CompiledExpr {
    prog: Prog,
}

/// A compiled scalar expression bound to one table's column storage.
pub struct BoundExpr<'t> {
    prog: BoundProg<'t>,
}

/// A compiled boolean predicate. Always carries the general mask program;
/// single-comparison shapes additionally carry a fast path that tests
/// rows directly against the typed column (see module docs).
#[derive(Clone, Debug)]
pub struct CompiledPredicate {
    prog: Prog,
    fast: Option<FastShape>,
}

/// A compiled predicate bound to one table's column storage.
pub struct BoundPredicate<'t> {
    prog: BoundProg<'t>,
    fast: Option<BoundFast<'t>>,
}

/// A fast-path predicate shape recognized at compile time (bound to a
/// concrete column type at bind time).
#[derive(Clone, Debug)]
enum FastShape {
    /// `col ⟨op⟩ rhs` (constant-on-the-left comparisons are normalized
    /// through [`CmpOp::flip`]).
    Cmp { col: ColRef, op: CmpOp, rhs: f64 },
    /// `lo <= col <= hi`.
    Between { col: ColRef, lo: f64, hi: f64 },
}

enum BoundFast<'t> {
    F64Cmp {
        col: &'t [f64],
        op: CmpOp,
        rhs: f64,
    },
    /// The i32 comparison runs in the integer domain — identical to the
    /// widened f64 comparison (the conversion is exact) but without the
    /// per-row convert.
    I32Cmp {
        col: &'t [i32],
        op: CmpOp,
        rhs: i32,
    },
    F64Between {
        col: &'t [f64],
        lo: f64,
        hi: f64,
    },
    I32Between {
        col: &'t [i32],
        lo: i32,
        hi: i32,
    },
    /// Dictionary predicate pushdown: the comparison ran once per
    /// dictionary entry (on the identical widened `f64` values the plain
    /// column would produce per row), leaving a 256-entry code-membership
    /// set. Rows test `keep[code]` — no float compare, no gather. Entries
    /// are 0 / -1 so the AVX2 kernel can gather and movemask them
    /// directly; codes past the dictionary stay 0 (validation rejects
    /// them before any scan).
    DictInSet {
        codes: &'t [u8],
        keep: Box<[i32; 256]>,
    },
    /// Wide-dictionary predicate pushdown: same once-per-entry evaluation
    /// as [`BoundFast::DictInSet`], but the membership set is a 65536-bit
    /// bitset (1024 × u64) indexed by the `u16` code — row `r` matches iff
    /// bit `codes[r]` is set. Codes past the dictionary stay 0 (validation
    /// rejects them before any scan).
    Dict16InSet {
        codes: &'t [u16],
        keep: Box<[u64; 1024]>,
    },
    /// RLE predicate pushdown: the comparison ran once per run. `fill`
    /// emits whole row ranges of matching runs (O(selected), no per-row
    /// test at all); `refine` walks the selection with a run cursor.
    RleRuns {
        run_ends: &'t [u32],
        keep: Vec<bool>,
    },
}

/// Reusable batch-sized evaluation registers. One scratch serves any
/// number of expressions, predicates and batches; registers grow to the
/// deepest program and widest batch seen and are then reused
/// allocation-free.
#[derive(Default)]
pub struct EvalScratch {
    regs: Vec<Vec<f64>>,
    masks: Vec<Vec<u8>>,
}

impl EvalScratch {
    pub fn new() -> Self {
        EvalScratch::default()
    }

    fn ensure(&mut self, scalar_depth: usize, mask_depth: usize, rows: usize) {
        if self.regs.len() < scalar_depth {
            self.regs.resize_with(scalar_depth, Vec::new);
        }
        for r in &mut self.regs[..scalar_depth] {
            if r.len() < rows {
                r.resize(rows, 0.0);
            }
        }
        if self.masks.len() < mask_depth {
            self.masks.resize_with(mask_depth, Vec::new);
        }
        for m in &mut self.masks[..mask_depth] {
            if m.len() < rows {
                m.resize(rows, 0);
            }
        }
    }
}

// Builder methods intentionally mirror operator names (`add`/`sub`/...
// build AST nodes; they are not the std operator traits).
#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn col(name: impl Into<ColRef>) -> Expr {
        Expr::Col(name.into())
    }

    pub fn lit(v: f64) -> Expr {
        Expr::Const(v)
    }

    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self = rhs` (IEEE equality on the widened values).
    pub fn eq(self, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `lo <= self <= hi` (SQL `BETWEEN`, inclusive on both ends).
    pub fn between(self, lo: Expr, hi: Expr) -> BoolExpr {
        BoolExpr::Between(Box::new(self), Box::new(lo), Box::new(hi))
    }

    /// Value of a constant subtree, if the whole subtree is constant.
    fn const_value(&self) -> Option<f64> {
        match self {
            Expr::Const(v) => Some(*v),
            Expr::Col(_) => None,
            Expr::Add(a, b) => Some(a.const_value()? + b.const_value()?),
            Expr::Sub(a, b) => Some(a.const_value()? - b.const_value()?),
            Expr::Mul(a, b) => Some(a.const_value()? * b.const_value()?),
            Expr::Div(a, b) => Some(a.const_value()? / b.const_value()?),
            Expr::Neg(a) => Some(-a.const_value()?),
        }
    }

    /// Compiles the expression to a register program with constant
    /// subtrees folded and constant operands fused into their consumer.
    pub fn compile(&self) -> CompiledExpr {
        let mut insts = Vec::new();
        let mut cols = Vec::new();
        emit(self, &mut insts, &mut cols);
        CompiledExpr {
            prog: Prog::new(insts, cols),
        }
    }

    /// Evaluates over the rows of `sel` (a selection vector of row ids),
    /// returning one value per selected row.
    ///
    /// This is the materializing convenience wrapper around the compiled
    /// evaluator: it allocates only the output vector (plus batch-sized
    /// scratch), never a vector per AST node.
    pub fn eval(&self, table: &Table, sel: &[u32]) -> Result<Vec<f64>, TableError> {
        let compiled = self.compile();
        let bound = compiled.bind(table)?;
        let mut out = vec![0.0f64; sel.len()];
        let mut scratch = EvalScratch::new();
        for (schunk, ochunk) in sel
            .chunks(EVAL_BATCH_ROWS)
            .zip(out.chunks_mut(EVAL_BATCH_ROWS))
        {
            bound.eval_into(schunk, &mut scratch, ochunk);
        }
        Ok(out)
    }
}

impl BoolExpr {
    /// `self AND rhs`.
    pub fn and(self, rhs: BoolExpr) -> BoolExpr {
        BoolExpr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: BoolExpr) -> BoolExpr {
        BoolExpr::Or(Box::new(self), Box::new(rhs))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> BoolExpr {
        BoolExpr::Not(Box::new(self))
    }

    /// Compiles the predicate to a mask program, recognizing the
    /// fast-path single-comparison shapes.
    pub fn compile(&self) -> CompiledPredicate {
        let mut insts = Vec::new();
        let mut cols = Vec::new();
        emit_bool(self, &mut insts, &mut cols);
        CompiledPredicate {
            prog: Prog::new(insts, cols),
            fast: self.fast_shape(),
        }
    }

    fn fast_shape(&self) -> Option<FastShape> {
        match self {
            BoolExpr::Cmp(op, a, b) => match (&**a, &**b) {
                (Expr::Col(c), Expr::Const(v)) => Some(FastShape::Cmp {
                    col: c.clone(),
                    op: *op,
                    rhs: *v,
                }),
                (Expr::Const(v), Expr::Col(c)) => Some(FastShape::Cmp {
                    col: c.clone(),
                    op: op.flip(),
                    rhs: *v,
                }),
                _ => None,
            },
            BoolExpr::Between(e, lo, hi) => match (&**e, &**lo, &**hi) {
                (Expr::Col(c), Expr::Const(l), Expr::Const(h)) => Some(FastShape::Between {
                    col: c.clone(),
                    lo: *l,
                    hi: *h,
                }),
                _ => None,
            },
            _ => None,
        }
    }

    /// Evaluates the predicate over the rows of `sel`, returning one
    /// `bool` per selected row. The materializing convenience wrapper
    /// (and the differential-testing reference for the batchwise filter
    /// paths — it always runs the general mask program, never the fast
    /// path).
    pub fn eval(&self, table: &Table, sel: &[u32]) -> Result<Vec<bool>, TableError> {
        let compiled = self.compile();
        let bound = compiled.prog.bind(table)?;
        let mut out = vec![false; sel.len()];
        let mut scratch = EvalScratch::new();
        for (schunk, ochunk) in sel
            .chunks(EVAL_BATCH_ROWS)
            .zip(out.chunks_mut(EVAL_BATCH_ROWS))
        {
            bound.exec(schunk, &mut scratch);
            debug_assert!(bound.mask_depth >= 1, "predicates produce a mask");
            for (o, &m) in ochunk.iter_mut().zip(&scratch.masks[0][..schunk.len()]) {
                *o = m != 0;
            }
        }
        Ok(out)
    }
}

/// Batch width of the materializing [`Expr::eval`] / [`BoolExpr::eval`]
/// wrappers (the fused pipeline chooses its own batch size).
const EVAL_BATCH_ROWS: usize = 4096;

fn col_index(cols: &mut Vec<ColRef>, name: &ColRef) -> usize {
    if let Some(i) = cols.iter().position(|c| c == name) {
        i
    } else {
        cols.push(name.clone());
        cols.len() - 1
    }
}

fn emit(e: &Expr, insts: &mut Vec<Inst>, cols: &mut Vec<ColRef>) {
    if let Some(v) = e.const_value() {
        insts.push(Inst::Const(v));
        return;
    }
    match e {
        Expr::Const(_) => unreachable!("handled by const_value"),
        Expr::Col(name) => insts.push(Inst::Col(col_index(cols, name))),
        Expr::Add(a, b) => emit_bin(a, b, BinOp::Add, insts, cols),
        Expr::Sub(a, b) => emit_bin(a, b, BinOp::Sub, insts, cols),
        Expr::Mul(a, b) => emit_bin(a, b, BinOp::Mul, insts, cols),
        Expr::Div(a, b) => emit_bin(a, b, BinOp::Div, insts, cols),
        Expr::Neg(a) => {
            emit(a, insts, cols);
            insts.push(Inst::Neg);
        }
    }
}

#[derive(Clone, Copy)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

fn emit_bin(a: &Expr, b: &Expr, op: BinOp, insts: &mut Vec<Inst>, cols: &mut Vec<ColRef>) {
    match (a.const_value(), b.const_value()) {
        // Both-const is folded one level up in `emit`.
        (Some(c), None) => {
            emit(b, insts, cols);
            insts.push(match op {
                // c + x == x + c and c * x == x * c bitwise (IEEE 754
                // addition/multiplication are commutative); subtraction
                // and division are not, hence the Const* forms.
                BinOp::Add => Inst::AddConst(c),
                BinOp::Sub => Inst::ConstSub(c),
                BinOp::Mul => Inst::MulConst(c),
                BinOp::Div => Inst::ConstDiv(c),
            });
        }
        (None, Some(c)) => {
            emit(a, insts, cols);
            insts.push(match op {
                BinOp::Add => Inst::AddConst(c),
                BinOp::Sub => Inst::SubConst(c),
                BinOp::Mul => Inst::MulConst(c),
                BinOp::Div => Inst::DivConst(c),
            });
        }
        _ => {
            emit(a, insts, cols);
            emit(b, insts, cols);
            insts.push(match op {
                BinOp::Add => Inst::Add,
                BinOp::Sub => Inst::Sub,
                BinOp::Mul => Inst::Mul,
                BinOp::Div => Inst::Div,
            });
        }
    }
}

fn emit_bool(e: &BoolExpr, insts: &mut Vec<Inst>, cols: &mut Vec<ColRef>) {
    match e {
        BoolExpr::Cmp(op, a, b) => match (a.const_value(), b.const_value()) {
            (Some(x), Some(y)) => insts.push(Inst::MaskConst(op.test(x, y))),
            (None, Some(c)) => {
                emit(a, insts, cols);
                insts.push(Inst::CmpConst(*op, c));
            }
            (Some(c), None) => {
                emit(b, insts, cols);
                insts.push(Inst::CmpConst(op.flip(), c));
            }
            (None, None) => {
                emit(a, insts, cols);
                emit(b, insts, cols);
                insts.push(Inst::Cmp(*op));
            }
        },
        BoolExpr::Between(e, lo, hi) => {
            match (e.const_value(), lo.const_value(), hi.const_value()) {
                (None, Some(l), Some(h)) => {
                    emit(e, insts, cols);
                    insts.push(Inst::BetweenConst(l, h));
                }
                // Non-constant bounds (or a fully constant subject): desugar
                // to the two inclusive comparisons SQL defines BETWEEN as.
                _ => {
                    let desugared = BoolExpr::Cmp(CmpOp::Ge, e.clone(), lo.clone())
                        .and(BoolExpr::Cmp(CmpOp::Le, e.clone(), hi.clone()));
                    emit_bool(&desugared, insts, cols);
                }
            }
        }
        BoolExpr::And(a, b) => {
            emit_bool(a, insts, cols);
            emit_bool(b, insts, cols);
            insts.push(Inst::And);
        }
        BoolExpr::Or(a, b) => {
            emit_bool(a, insts, cols);
            emit_bool(b, insts, cols);
            insts.push(Inst::Or);
        }
        BoolExpr::Not(a) => {
            emit_bool(a, insts, cols);
            insts.push(Inst::Not);
        }
    }
}

impl CompiledExpr {
    /// Resolves the referenced columns against a table. The borrowed view
    /// is cheap to build (per query, per morsel): binding copies no data.
    /// Missing *and* non-numeric columns surface as [`TableError`]s —
    /// this is the check the plan layer validates aggregate expressions
    /// with.
    pub fn bind<'t>(&'t self, table: &'t Table) -> Result<BoundExpr<'t>, TableError> {
        Ok(BoundExpr {
            prog: self.prog.bind(table)?,
        })
    }

    /// The distinct column names this expression reads (the fused
    /// executor validates encoded columns once per query against this
    /// list before scanning).
    pub(crate) fn col_names(&self) -> &[ColRef] {
        &self.prog.cols
    }
}

impl CompiledPredicate {
    /// Resolves the referenced columns against a table, selecting the
    /// typed fast path when the shape and column type allow it.
    pub fn bind<'t>(&'t self, table: &'t Table) -> Result<BoundPredicate<'t>, TableError> {
        let prog = self.prog.bind(table)?;
        let fast = match &self.fast {
            None => None,
            Some(shape) => bind_fast(shape, table)?,
        };
        Ok(BoundPredicate { prog, fast })
    }

    /// The distinct column names this predicate reads (see
    /// [`CompiledExpr::col_names`]).
    pub(crate) fn col_names(&self) -> &[ColRef] {
        &self.prog.cols
    }
}

/// Exactly representable as `i32`? (Comparing an i32 column against such
/// a constant in the integer domain is bit-equivalent to the widened f64
/// comparison.)
fn as_exact_i32(v: f64) -> Option<i32> {
    if v.fract() == 0.0 && (i32::MIN as f64..=i32::MAX as f64).contains(&v) {
        Some(v as i32)
    } else {
        None
    }
}

/// The predicate of a fast shape, applied to one widened value — the
/// same IEEE comparison the general mask program performs per row, so
/// evaluating it once per dictionary entry / run value yields the exact
/// per-row truth table.
fn shape_test(shape: &FastShape, v: f64) -> bool {
    match shape {
        FastShape::Cmp { op, rhs, .. } => op.test(v, *rhs),
        FastShape::Between { lo, hi, .. } => (v >= *lo) & (v <= *hi),
    }
}

fn bind_fast<'t>(shape: &FastShape, table: &'t Table) -> Result<Option<BoundFast<'t>>, TableError> {
    let col_name = match shape {
        FastShape::Cmp { col, .. } | FastShape::Between { col, .. } => col,
    };
    // Existence/type already validated by the program bind; fall back to
    // the general program for column types without a dedicated fast loop.
    let column = table.column(col_name.as_str())?;
    Ok(match (shape, column) {
        (shape, Column::Dict { codes, dict }) => {
            let Ok(vals) = vals_of(dict, col_name) else {
                return Ok(None);
            };
            let mut keep = Box::new([0i32; 256]);
            for (c, k) in keep.iter_mut().enumerate().take(dict.len()) {
                *k = -(shape_test(shape, vals.get(c)) as i32);
            }
            Some(BoundFast::DictInSet { codes, keep })
        }
        (shape, Column::Dict16 { codes, dict }) => {
            let Ok(vals) = vals_of(dict, col_name) else {
                return Ok(None);
            };
            let mut keep = Box::new([0u64; 1024]);
            for c in 0..dict.len() {
                if shape_test(shape, vals.get(c)) {
                    keep[c >> 6] |= 1u64 << (c & 63);
                }
            }
            Some(BoundFast::Dict16InSet { codes, keep })
        }
        (shape, Column::Rle { run_ends, values }) => {
            let Ok(vals) = vals_of(values, col_name) else {
                return Ok(None);
            };
            let keep: Vec<bool> = (0..run_ends.len())
                .map(|r| shape_test(shape, vals.get(r)))
                .collect();
            Some(BoundFast::RleRuns { run_ends, keep })
        }
        (FastShape::Cmp { op, rhs, .. }, Column::F64(v)) => Some(BoundFast::F64Cmp {
            col: v,
            op: *op,
            rhs: *rhs,
        }),
        (FastShape::Cmp { op, rhs, .. }, Column::I32(v)) => {
            as_exact_i32(*rhs).map(|rhs| BoundFast::I32Cmp {
                col: v,
                op: *op,
                rhs,
            })
        }
        (FastShape::Between { lo, hi, .. }, Column::F64(v)) => Some(BoundFast::F64Between {
            col: v,
            lo: *lo,
            hi: *hi,
        }),
        (FastShape::Between { lo, hi, .. }, Column::I32(v)) => {
            match (as_exact_i32(*lo), as_exact_i32(*hi)) {
                (Some(lo), Some(hi)) => Some(BoundFast::I32Between { col: v, lo, hi }),
                _ => None,
            }
        }
        _ => None,
    })
}

/// Branchless selection-vector build: writes every candidate row id and
/// advances the length by the predicate bit (the X100 idiom — no
/// per-row branch misprediction at mid selectivities).
#[inline]
fn fill_with(lo: usize, hi: usize, sel: &mut Vec<u32>, keep: impl Fn(usize) -> bool) {
    sel.clear();
    sel.resize(hi - lo, 0);
    let mut k = 0usize;
    for row in lo..hi {
        sel[k] = row as u32;
        k += keep(row) as usize;
    }
    sel.truncate(k);
}

/// Branchless in-place compaction of an existing selection vector.
#[inline]
fn refine_with(sel: &mut Vec<u32>, keep: impl Fn(usize) -> bool) {
    let mut k = 0usize;
    for i in 0..sel.len() {
        let row = sel[i];
        sel[k] = row;
        k += keep(row as usize) as usize;
    }
    sel.truncate(k);
}

/// Comparison-predicate fill with the operator dispatch hoisted out of
/// the row loop (monomorphized per column type).
#[inline]
fn fill_cmp<T: Copy + PartialOrd>(
    col: &[T],
    op: CmpOp,
    rhs: T,
    lo: usize,
    hi: usize,
    sel: &mut Vec<u32>,
) {
    match op {
        CmpOp::Lt => fill_with(lo, hi, sel, |r| col[r] < rhs),
        CmpOp::Le => fill_with(lo, hi, sel, |r| col[r] <= rhs),
        CmpOp::Gt => fill_with(lo, hi, sel, |r| col[r] > rhs),
        CmpOp::Ge => fill_with(lo, hi, sel, |r| col[r] >= rhs),
        CmpOp::Eq => fill_with(lo, hi, sel, |r| col[r] == rhs),
        CmpOp::Ne => fill_with(lo, hi, sel, |r| col[r] != rhs),
    }
}

#[inline]
fn refine_cmp<T: Copy + PartialOrd>(col: &[T], op: CmpOp, rhs: T, sel: &mut Vec<u32>) {
    match op {
        CmpOp::Lt => refine_with(sel, |r| col[r] < rhs),
        CmpOp::Le => refine_with(sel, |r| col[r] <= rhs),
        CmpOp::Gt => refine_with(sel, |r| col[r] > rhs),
        CmpOp::Ge => refine_with(sel, |r| col[r] >= rhs),
        CmpOp::Eq => refine_with(sel, |r| col[r] == rhs),
        CmpOp::Ne => refine_with(sel, |r| col[r] != rhs),
    }
}

impl BoundFast<'_> {
    /// The AVX2 build of this predicate's selection vector, when the
    /// dispatch level allows it (`false` = run the scalar loop). On
    /// non-x86 targets there is no kernel and the scalar path is it.
    #[inline]
    fn fill_simd(&self, _lo: usize, _hi: usize, _sel: &mut Vec<u32>) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use crate::simd_sel;
            match self {
                BoundFast::F64Cmp { col, op, rhs } => {
                    simd_sel::fill_f64_cmp(col, *op, *rhs, _lo, _hi, _sel)
                }
                BoundFast::I32Cmp { col, op, rhs } => {
                    simd_sel::fill_i32_cmp(col, *op, *rhs, _lo, _hi, _sel)
                }
                BoundFast::F64Between { col, lo: l, hi: h } => {
                    simd_sel::fill_f64_between(col, *l, *h, _lo, _hi, _sel)
                }
                BoundFast::I32Between { col, lo: l, hi: h } => {
                    simd_sel::fill_i32_between(col, *l, *h, _lo, _hi, _sel)
                }
                BoundFast::DictInSet { codes, keep } => {
                    simd_sel::fill_u8_in_set(codes, keep, _lo, _hi, _sel)
                }
                // The u16 bitset test is two scalar ops per row; no
                // dedicated kernel yet. Range emission is already
                // O(selected rows); nothing for a per-row kernel to speed
                // up there either.
                BoundFast::Dict16InSet { .. } | BoundFast::RleRuns { .. } => false,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        false
    }

    #[inline]
    fn refine_simd(&self, _sel: &mut Vec<u32>) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use crate::simd_sel;
            match self {
                BoundFast::F64Cmp { col, op, rhs } => {
                    simd_sel::refine_f64_cmp(col, *op, *rhs, _sel)
                }
                BoundFast::I32Cmp { col, op, rhs } => {
                    simd_sel::refine_i32_cmp(col, *op, *rhs, _sel)
                }
                BoundFast::F64Between { col, lo, hi } => {
                    simd_sel::refine_f64_between(col, *lo, *hi, _sel)
                }
                BoundFast::I32Between { col, lo, hi } => {
                    simd_sel::refine_i32_between(col, *lo, *hi, _sel)
                }
                // An i32 gather over u8 codes would read past the column's
                // end; the scalar LUT loop is the refine path for codes.
                BoundFast::DictInSet { .. }
                | BoundFast::Dict16InSet { .. }
                | BoundFast::RleRuns { .. } => false,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        false
    }

    fn fill(&self, lo: usize, hi: usize, sel: &mut Vec<u32>) {
        if self.fill_simd(lo, hi, sel) {
            return;
        }
        match self {
            BoundFast::F64Cmp { col, op, rhs } => fill_cmp(col, *op, *rhs, lo, hi, sel),
            BoundFast::I32Cmp { col, op, rhs } => fill_cmp(col, *op, *rhs, lo, hi, sel),
            BoundFast::F64Between { col, lo: l, hi: h } => {
                let (l, h) = (*l, *h);
                fill_with(lo, hi, sel, |r| (col[r] >= l) & (col[r] <= h))
            }
            BoundFast::I32Between { col, lo: l, hi: h } => {
                let (l, h) = (*l, *h);
                fill_with(lo, hi, sel, |r| (col[r] >= l) & (col[r] <= h))
            }
            BoundFast::DictInSet { codes, keep } => {
                fill_with(lo, hi, sel, |r| keep[codes[r] as usize] != 0)
            }
            BoundFast::Dict16InSet { codes, keep } => fill_with(lo, hi, sel, |r| {
                let c = codes[r] as usize;
                keep[c >> 6] >> (c & 63) & 1 != 0
            }),
            BoundFast::RleRuns { run_ends, keep } => {
                // Walk the runs overlapping [lo, hi) and append whole row
                // ranges for the matching ones — per-run work, not per-row.
                sel.clear();
                let mut run = run_ends.partition_point(|&e| e as usize <= lo);
                let mut row = lo;
                while row < hi {
                    let end = (run_ends[run] as usize).min(hi);
                    if keep[run] {
                        sel.extend(row as u32..end as u32);
                    }
                    row = end;
                    run += 1;
                }
            }
        }
    }

    fn refine(&self, sel: &mut Vec<u32>) {
        if self.refine_simd(sel) {
            return;
        }
        match self {
            BoundFast::F64Cmp { col, op, rhs } => refine_cmp(col, *op, *rhs, sel),
            BoundFast::I32Cmp { col, op, rhs } => refine_cmp(col, *op, *rhs, sel),
            BoundFast::F64Between { col, lo, hi } => {
                let (l, h) = (*lo, *hi);
                refine_with(sel, |r| (col[r] >= l) & (col[r] <= h))
            }
            BoundFast::I32Between { col, lo, hi } => {
                let (l, h) = (*lo, *hi);
                refine_with(sel, |r| (col[r] >= l) & (col[r] <= h))
            }
            BoundFast::DictInSet { codes, keep } => {
                refine_with(sel, |r| keep[codes[r] as usize] != 0)
            }
            BoundFast::Dict16InSet { codes, keep } => refine_with(sel, |r| {
                let c = codes[r] as usize;
                keep[c >> 6] >> (c & 63) & 1 != 0
            }),
            BoundFast::RleRuns { run_ends, keep } => {
                // Selection vectors are increasing, so every run covers a
                // contiguous span of candidates: keep or drop whole spans
                // (one compare per row plus a block copy per kept run)
                // instead of a cursor + table lookup per row.
                let mut run = 0usize;
                let mut k = 0usize;
                let mut i = 0usize;
                let n = sel.len();
                while i < n {
                    run = advance_run(run_ends, run, sel[i]);
                    let end = run_ends[run];
                    let start = i;
                    while i < n && sel[i] < end {
                        i += 1;
                    }
                    if keep[run] {
                        sel.copy_within(start..i, k);
                        k += i - start;
                    }
                }
                sel.truncate(k);
            }
        }
    }
}

impl BoundProg<'_> {
    /// Executes the program over one batch; the scalar result (if any)
    /// lands in `scratch.regs[0][..n]`, the mask result in
    /// `scratch.masks[0][..n]`.
    fn exec(&self, sel: &[u32], scratch: &mut EvalScratch) {
        let n = sel.len();
        scratch.ensure(self.scalar_depth.max(1), self.mask_depth, n);
        let EvalScratch { regs, masks } = scratch;
        let mut ssp = 0usize;
        let mut msp = 0usize;
        for inst in self.insts {
            match *inst {
                Inst::Col(c) => {
                    self.cols[c].gather(sel, &mut regs[ssp][..n]);
                    ssp += 1;
                }
                Inst::Const(v) => {
                    regs[ssp][..n].fill(v);
                    ssp += 1;
                }
                Inst::Add => {
                    ssp -= 1;
                    let (lo, hi) = regs.split_at_mut(ssp);
                    for (a, &b) in lo[ssp - 1][..n].iter_mut().zip(&hi[0][..n]) {
                        *a += b;
                    }
                }
                Inst::Sub => {
                    ssp -= 1;
                    let (lo, hi) = regs.split_at_mut(ssp);
                    for (a, &b) in lo[ssp - 1][..n].iter_mut().zip(&hi[0][..n]) {
                        *a -= b;
                    }
                }
                Inst::Mul => {
                    ssp -= 1;
                    let (lo, hi) = regs.split_at_mut(ssp);
                    for (a, &b) in lo[ssp - 1][..n].iter_mut().zip(&hi[0][..n]) {
                        *a *= b;
                    }
                }
                Inst::Div => {
                    ssp -= 1;
                    let (lo, hi) = regs.split_at_mut(ssp);
                    for (a, &b) in lo[ssp - 1][..n].iter_mut().zip(&hi[0][..n]) {
                        *a /= b;
                    }
                }
                Inst::AddConst(c) => {
                    for a in &mut regs[ssp - 1][..n] {
                        *a += c;
                    }
                }
                Inst::SubConst(c) => {
                    for a in &mut regs[ssp - 1][..n] {
                        *a -= c;
                    }
                }
                Inst::ConstSub(c) => {
                    for a in &mut regs[ssp - 1][..n] {
                        *a = c - *a;
                    }
                }
                Inst::MulConst(c) => {
                    for a in &mut regs[ssp - 1][..n] {
                        *a *= c;
                    }
                }
                Inst::DivConst(c) => {
                    for a in &mut regs[ssp - 1][..n] {
                        *a /= c;
                    }
                }
                Inst::ConstDiv(c) => {
                    for a in &mut regs[ssp - 1][..n] {
                        *a = c / *a;
                    }
                }
                Inst::Neg => {
                    for a in &mut regs[ssp - 1][..n] {
                        *a = -*a;
                    }
                }
                Inst::Cmp(op) => {
                    ssp -= 2;
                    let (lo, hi) = regs.split_at_mut(ssp + 1);
                    let a = &lo[ssp][..n];
                    let b = &hi[0][..n];
                    let m = &mut masks[msp][..n];
                    match op {
                        CmpOp::Lt => cmp_loop(m, a, b, |x, y| x < y),
                        CmpOp::Le => cmp_loop(m, a, b, |x, y| x <= y),
                        CmpOp::Gt => cmp_loop(m, a, b, |x, y| x > y),
                        CmpOp::Ge => cmp_loop(m, a, b, |x, y| x >= y),
                        CmpOp::Eq => cmp_loop(m, a, b, |x, y| x == y),
                        CmpOp::Ne => cmp_loop(m, a, b, |x, y| x != y),
                    }
                    msp += 1;
                }
                Inst::CmpConst(op, c) => {
                    ssp -= 1;
                    let a = &regs[ssp][..n];
                    let m = &mut masks[msp][..n];
                    match op {
                        CmpOp::Lt => cmp_const_loop(m, a, |x| x < c),
                        CmpOp::Le => cmp_const_loop(m, a, |x| x <= c),
                        CmpOp::Gt => cmp_const_loop(m, a, |x| x > c),
                        CmpOp::Ge => cmp_const_loop(m, a, |x| x >= c),
                        CmpOp::Eq => cmp_const_loop(m, a, |x| x == c),
                        CmpOp::Ne => cmp_const_loop(m, a, |x| x != c),
                    }
                    msp += 1;
                }
                Inst::BetweenConst(l, h) => {
                    ssp -= 1;
                    let a = &regs[ssp][..n];
                    cmp_const_loop(&mut masks[msp][..n], a, |x| (x >= l) & (x <= h));
                    msp += 1;
                }
                Inst::MaskConst(b) => {
                    masks[msp][..n].fill(b as u8);
                    msp += 1;
                }
                Inst::And => {
                    msp -= 1;
                    let (lo, hi) = masks.split_at_mut(msp);
                    for (a, &b) in lo[msp - 1][..n].iter_mut().zip(&hi[0][..n]) {
                        *a &= b;
                    }
                }
                Inst::Or => {
                    msp -= 1;
                    let (lo, hi) = masks.split_at_mut(msp);
                    for (a, &b) in lo[msp - 1][..n].iter_mut().zip(&hi[0][..n]) {
                        *a |= b;
                    }
                }
                Inst::Not => {
                    for m in &mut masks[msp - 1][..n] {
                        *m ^= 1;
                    }
                }
            }
        }
        debug_assert_eq!(
            (ssp, msp),
            if self.mask_depth == 0 { (1, 0) } else { (0, 1) },
            "program left an unbalanced stack"
        );
    }
}

#[inline]
fn cmp_loop(m: &mut [u8], a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> bool) {
    for ((m, &x), &y) in m.iter_mut().zip(a).zip(b) {
        *m = f(x, y) as u8;
    }
}

#[inline]
fn cmp_const_loop(m: &mut [u8], a: &[f64], f: impl Fn(f64) -> bool) {
    for (m, &x) in m.iter_mut().zip(a) {
        *m = f(x) as u8;
    }
}

impl BoundExpr<'_> {
    /// Evaluates one batch: `out[k] = expr(row sel[k])` for every selected
    /// row. All intermediates live in `scratch`; nothing is allocated once
    /// the scratch has warmed up to this depth and batch size.
    pub fn eval_into(&self, sel: &[u32], scratch: &mut EvalScratch, out: &mut [f64]) {
        let n = sel.len();
        debug_assert_eq!(n, out.len());
        debug_assert_eq!(self.prog.mask_depth, 0, "scalar expression");
        self.prog.exec(sel, scratch);
        out.copy_from_slice(&scratch.regs[0][..n]);
    }
}

impl BoundPredicate<'_> {
    /// First conjunct of a batch: fills `sel` with the matching row ids
    /// of `[blo, bhi)`.
    pub fn fill(&self, blo: usize, bhi: usize, sel: &mut Vec<u32>, scratch: &mut EvalScratch) {
        if let Some(fast) = &self.fast {
            fast.fill(blo, bhi, sel);
            return;
        }
        sel.clear();
        sel.extend(blo as u32..bhi as u32);
        self.mask_filter(sel, scratch);
    }

    /// Later conjuncts: compacts `sel` in place (order-preserving).
    pub fn refine(&self, sel: &mut Vec<u32>, scratch: &mut EvalScratch) {
        if let Some(fast) = &self.fast {
            fast.refine(sel);
            return;
        }
        self.mask_filter(sel, scratch);
    }

    /// General path: evaluate the mask program over the candidate rows,
    /// then compact branchlessly by the mask bit.
    fn mask_filter(&self, sel: &mut Vec<u32>, scratch: &mut EvalScratch) {
        let n = sel.len();
        if n == 0 {
            return;
        }
        self.prog.exec(sel, scratch);
        let mask = &scratch.masks[0][..n];
        #[cfg(target_arch = "x86_64")]
        if crate::simd_sel::compact_by_mask(sel, mask) {
            return;
        }
        let mut k = 0usize;
        for (i, &m) in mask.iter().enumerate() {
            sel[k] = sel[i];
            k += (m != 0) as usize;
        }
        sel.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table() -> Table {
        let mut t = Table::new("t");
        t.add_column("price", Column::f64(vec![100.0, 200.0, 300.0]))
            .unwrap();
        t.add_column("disc", Column::f64(vec![0.1, 0.0, 0.5]))
            .unwrap();
        t
    }

    #[test]
    fn evaluates_q1_style_expression() {
        let t = table();
        // price * (1 - disc)
        let e = Expr::col("price").mul(Expr::lit(1.0).sub(Expr::col("disc")));
        let out = e.eval(&t, &[0, 1, 2]).unwrap();
        assert_eq!(out, vec![90.0, 200.0, 150.0]);
    }

    #[test]
    fn respects_selection_vector() {
        let t = table();
        let e = Expr::col("price").add(Expr::lit(1.0));
        assert_eq!(e.eval(&t, &[2, 0]).unwrap(), vec![301.0, 101.0]);
        assert_eq!(e.eval(&t, &[]).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn missing_column_errors() {
        let t = table();
        let e = Expr::col("nope");
        assert!(e.eval(&t, &[0]).is_err());
    }

    #[test]
    fn integer_columns_widen_exactly() {
        let mut t = table();
        t.add_column("days", Column::i32(vec![1, -2, 3])).unwrap();
        t.add_column("tag", Column::u8(vec![7, 8, 9])).unwrap();
        t.add_column("key", Column::u32(vec![1 << 30, 5, 0]))
            .unwrap();
        let e = Expr::col("days").add(Expr::col("tag"));
        assert_eq!(e.eval(&t, &[0, 1, 2]).unwrap(), vec![8.0, 6.0, 12.0]);
        let k = Expr::col("key").mul(Expr::lit(1.0));
        assert_eq!(k.eval(&t, &[0]).unwrap(), vec![(1u32 << 30) as f64]);
    }

    #[test]
    fn non_numeric_column_errors_instead_of_panicking() {
        let mut t = table();
        t.add_column("half", Column::f32(vec![1.0, 2.0, 3.0]))
            .unwrap();
        let e = Expr::col("half").add(Expr::lit(1.0));
        assert_eq!(
            e.eval(&t, &[0]).unwrap_err(),
            TableError::TypeMismatch {
                column: "half".into(),
                expected: NUMERIC_EXPECTED,
                found: "F32",
            }
        );
    }

    #[test]
    fn structural_equality_for_state_sharing() {
        let a = || Expr::col("price").mul(Expr::lit(1.0).sub(Expr::col("disc")));
        assert_eq!(a(), a());
        assert_ne!(a(), Expr::col("price"));
        assert_ne!(Expr::lit(1.0), Expr::lit(2.0));
        assert_ne!(
            Expr::col("price").div(Expr::lit(2.0)),
            Expr::lit(2.0).div(Expr::col("price"))
        );
        assert_eq!(Expr::col("price").neg(), Expr::col("price").neg());
        // Bitwise on constants: ±0.0 differ (x * -0.0 and x * 0.0 round
        // to different bits for negative x), NaN literals match.
        assert_ne!(Expr::lit(0.0), Expr::lit(-0.0));
        assert_eq!(Expr::lit(f64::NAN), Expr::lit(f64::NAN));
    }

    #[test]
    fn evaluation_is_row_order_deterministic() {
        // Same row through different selection orders: identical bits
        // (footnote 3: whole-expression evaluation is reproducible).
        let t = table();
        let e = Expr::col("price")
            .mul(Expr::col("disc"))
            .add(Expr::lit(0.1));
        let a = e.eval(&t, &[0, 1, 2]).unwrap();
        let b = e.eval(&t, &[2, 1, 0]).unwrap();
        assert_eq!(a[0].to_bits(), b[2].to_bits());
        assert_eq!(a[2].to_bits(), b[0].to_bits());
    }

    #[test]
    fn constant_subtrees_fold_to_a_single_instruction() {
        // (2 + 3) * (10 - 4) / -(-2) is entirely constant: one Const
        // instruction, no per-node vectors anywhere.
        let e = Expr::lit(2.0)
            .add(Expr::lit(3.0))
            .mul(Expr::lit(10.0).sub(Expr::lit(4.0)))
            .div(Expr::lit(2.0).neg().neg());
        let c = e.compile();
        assert_eq!(c.prog.insts.len(), 1);
        assert!(matches!(c.prog.insts[0], Inst::Const(v) if v == 15.0));
        let t = table();
        assert_eq!(e.eval(&t, &[0, 1]).unwrap(), vec![15.0, 15.0]);
    }

    #[test]
    fn constant_operands_fuse_without_extra_registers() {
        // price * (1 - disc) * (1 + 0.5): depth 2, and the constant
        // subexpression (1 + 0.5) folds into a MulConst.
        let e = Expr::col("price")
            .mul(Expr::lit(1.0).sub(Expr::col("disc")))
            .mul(Expr::lit(1.0).add(Expr::lit(0.5)));
        let c = e.compile();
        assert_eq!(c.prog.scalar_depth, 2);
        assert!(c
            .prog
            .insts
            .iter()
            .any(|i| matches!(i, Inst::MulConst(v) if *v == 1.5)));
        let out = e.eval(&table(), &[0, 1, 2]).unwrap();
        assert_eq!(out, vec![135.0, 300.0, 225.0]);
    }

    #[test]
    fn div_and_neg_fuse_constants_with_correct_operand_order() {
        let t = table();
        // price / 4 -> DivConst; 100 / price -> ConstDiv; -price -> Neg.
        let e = Expr::col("price").div(Expr::lit(4.0));
        let c = e.compile();
        assert!(c
            .prog
            .insts
            .iter()
            .any(|i| matches!(i, Inst::DivConst(v) if *v == 4.0)));
        assert_eq!(e.eval(&t, &[0, 2]).unwrap(), vec![25.0, 75.0]);

        let e = Expr::lit(100.0).div(Expr::col("price"));
        let c = e.compile();
        assert!(c
            .prog
            .insts
            .iter()
            .any(|i| matches!(i, Inst::ConstDiv(v) if *v == 100.0)));
        assert_eq!(e.eval(&t, &[0, 1]).unwrap(), vec![1.0, 0.5]);

        let e = Expr::col("price").neg();
        assert_eq!(e.eval(&t, &[1]).unwrap(), vec![-200.0]);
    }

    #[test]
    fn neg_is_sign_flip_not_zero_minus() {
        let mut t = Table::new("z");
        t.add_column("x", Column::f64(vec![0.0, -0.0, 1.5]))
            .unwrap();
        let out = Expr::col("x").neg().eval(&t, &[0, 1, 2]).unwrap();
        assert_eq!(out[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(out[1].to_bits(), 0.0f64.to_bits());
        assert_eq!(out[2], -1.5);
        // And the constant fold performs the same operation.
        assert_eq!(
            Expr::lit(0.0).neg().eval(&t, &[0]).unwrap()[0].to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn compiled_eval_is_bit_identical_to_tree_semantics() {
        // Hand-evaluate the Q1 charge expression (extended with Div/Neg)
        // per row and compare bits: the compiled program must perform the
        // identical rounding dag.
        let mut t = Table::new("l");
        let price = vec![1234.567, 9.25e4, 3.0e-3, 7777.125];
        let disc = vec![0.03, 0.1, 0.07, 0.0];
        let tax = vec![0.02, 0.08, 0.0, 0.05];
        t.add_column("p", Column::f64(price.clone())).unwrap();
        t.add_column("d", Column::f64(disc.clone())).unwrap();
        t.add_column("t", Column::f64(tax.clone())).unwrap();
        let e = Expr::col("p")
            .mul(Expr::lit(1.0).sub(Expr::col("d")))
            .mul(Expr::lit(1.0).add(Expr::col("t")))
            .div(Expr::col("p").neg());
        let out = e.eval(&t, &[0, 1, 2, 3]).unwrap();
        for i in 0..4 {
            let reference = price[i] * (1.0 - disc[i]) * (1.0 + tax[i]) / (-price[i]);
            assert_eq!(out[i].to_bits(), reference.to_bits(), "row {i}");
        }
    }

    #[test]
    fn scratch_is_reused_across_expressions_and_batches() {
        let t = table();
        let e1 = Expr::col("price").mul(Expr::col("disc")).compile();
        let e2 = Expr::col("price")
            .sub(Expr::col("disc").mul(Expr::lit(2.0)))
            .compile();
        let b1 = e1.bind(&t).unwrap();
        let b2 = e2.bind(&t).unwrap();
        let mut scratch = EvalScratch::new();
        let mut out = [0.0f64; 2];
        b1.eval_into(&[0, 2], &mut scratch, &mut out);
        assert_eq!(out, [10.0, 150.0]);
        b2.eval_into(&[1, 0], &mut scratch, &mut out);
        assert_eq!(out, [200.0, 99.8]);
        // Smaller batch after a larger one still evaluates correctly.
        let mut one = [0.0f64; 1];
        b1.eval_into(&[1], &mut scratch, &mut one);
        assert_eq!(one, [0.0]);
    }

    // ---- boolean layer ---------------------------------------------------

    /// Per-row tree-walk reference for predicates.
    fn bool_reference(e: &BoolExpr, t: &Table, row: u32) -> bool {
        match e {
            BoolExpr::Cmp(op, a, b) => {
                let x = a.eval(t, &[row]).unwrap()[0];
                let y = b.eval(t, &[row]).unwrap()[0];
                op.test(x, y)
            }
            BoolExpr::Between(e, lo, hi) => {
                let x = e.eval(t, &[row]).unwrap()[0];
                let l = lo.eval(t, &[row]).unwrap()[0];
                let h = hi.eval(t, &[row]).unwrap()[0];
                (x >= l) & (x <= h)
            }
            BoolExpr::And(a, b) => bool_reference(a, t, row) && bool_reference(b, t, row),
            BoolExpr::Or(a, b) => bool_reference(a, t, row) || bool_reference(b, t, row),
            BoolExpr::Not(a) => !bool_reference(a, t, row),
        }
    }

    fn pred_table() -> Table {
        let mut t = Table::new("p");
        t.add_column(
            "x",
            Column::f64(
                (0..200)
                    .map(|i| (i % 23) as f64 * 0.5 - 3.0)
                    .collect::<Vec<_>>(),
            ),
        )
        .unwrap();
        t.add_column(
            "k",
            Column::i32((0..200).map(|i| (i % 17) - 5).collect::<Vec<_>>()),
        )
        .unwrap();
        t.add_column(
            "b",
            Column::u8((0..200).map(|i| (i % 7) as u8).collect::<Vec<_>>()),
        )
        .unwrap();
        t
    }

    fn check_pred(e: &BoolExpr, t: &Table) {
        let rows: Vec<u32> = (0..t.rows() as u32).collect();
        // Materializing mask == per-row tree walk.
        let mask = e.eval(t, &rows).unwrap();
        for &r in &rows {
            assert_eq!(mask[r as usize], bool_reference(e, t, r), "row {r}: {e:?}");
        }
        // fill == expected selection.
        let compiled = e.compile();
        let bound = compiled.bind(t).unwrap();
        let mut scratch = EvalScratch::new();
        let mut sel = Vec::new();
        bound.fill(0, t.rows(), &mut sel, &mut scratch);
        let expected: Vec<u32> = rows.iter().copied().filter(|&r| mask[r as usize]).collect();
        assert_eq!(sel, expected, "{e:?}");
        // refine from the full set reaches the same selection.
        let mut sel2: Vec<u32> = rows.clone();
        bound.refine(&mut sel2, &mut scratch);
        assert_eq!(sel2, expected, "{e:?}");
    }

    #[test]
    fn predicates_match_tree_reference() {
        let t = pred_table();
        let preds = [
            Expr::col("x").lt(Expr::lit(4.0)),
            Expr::col("k").le(Expr::lit(7.0)),
            Expr::lit(2.0).le(Expr::col("k")), // const-on-the-left flips
            Expr::col("x").between(Expr::lit(-1.0), Expr::lit(3.5)),
            Expr::col("k").between(Expr::lit(-2.0), Expr::lit(9.0)),
            Expr::col("b").eq(Expr::lit(3.0)),
            Expr::col("x")
                .mul(Expr::lit(2.0))
                .gt(Expr::col("k").add(Expr::lit(1.0))),
            Expr::col("x")
                .lt(Expr::lit(1.0))
                .and(Expr::col("k").ge(Expr::lit(0.0))),
            Expr::col("x")
                .lt(Expr::lit(0.0))
                .or(Expr::col("b").ne(Expr::lit(2.0))),
            Expr::col("x").lt(Expr::lit(2.0)).not(),
            Expr::col("k")
                .between(Expr::lit(0.0), Expr::lit(8.0))
                .not()
                .or(Expr::col("x").ge(Expr::col("b"))),
            // Between with non-constant bounds desugars.
            Expr::col("x").between(Expr::col("k"), Expr::col("b")),
            // Fully constant comparisons fold to a mask constant.
            Expr::lit(1.0)
                .lt(Expr::lit(2.0))
                .and(Expr::col("x").gt(Expr::lit(0.0))),
            Expr::lit(5.0)
                .lt(Expr::lit(2.0))
                .or(Expr::col("x").gt(Expr::lit(0.0))),
        ];
        for p in &preds {
            check_pred(p, &t);
        }
    }

    #[test]
    fn i32_fast_path_requires_exact_bounds() {
        let t = pred_table();
        // 3.5 is not an i32: the comparison must fall back to the general
        // (widened f64) program and still be correct.
        let p = Expr::col("k").le(Expr::lit(3.5));
        let compiled = p.compile();
        let bound = compiled.bind(&t).unwrap();
        assert!(bound.fast.is_none());
        check_pred(&p, &t);
        // An exact bound takes the integer fast path.
        let p = Expr::col("k").le(Expr::lit(3.0));
        let compiled = p.compile();
        let bound = compiled.bind(&t).unwrap();
        assert!(matches!(bound.fast, Some(BoundFast::I32Cmp { rhs: 3, .. })));
        check_pred(&p, &t);
    }

    /// `pred_table` with `x` dictionary-encoded and a sorted RLE copy of
    /// `k` (`kr`), plus the plain decoded columns for cross-checking.
    fn encoded_pred_table() -> Table {
        let mut t = Table::new("e");
        let x: Vec<f64> = (0..200).map(|i| (i % 23) as f64 * 0.5 - 3.0).collect();
        let kr: Vec<i32> = {
            let mut v: Vec<i32> = (0..200).map(|i| (i % 17) - 5).collect();
            v.sort_unstable();
            v
        };
        let b: Vec<u8> = (0..200).map(|i| (i % 7) as u8).collect();
        t.add_column("x", Column::f64(x.clone()).dict_encode().unwrap())
            .unwrap();
        t.add_column("x_plain", Column::f64(x)).unwrap();
        t.add_column("kr", Column::i32(kr.clone()).rle_encode().unwrap())
            .unwrap();
        t.add_column("kr_plain", Column::i32(kr)).unwrap();
        t.add_column("b", Column::u8(b).rle_encode().unwrap())
            .unwrap();
        t
    }

    #[test]
    fn encoded_predicates_match_tree_reference() {
        let t = encoded_pred_table();
        let preds = [
            Expr::col("x").lt(Expr::lit(4.0)),
            Expr::col("x").between(Expr::lit(-1.0), Expr::lit(3.5)),
            Expr::lit(2.0).le(Expr::col("kr")),
            Expr::col("kr").between(Expr::lit(-2.0), Expr::lit(9.0)),
            Expr::col("b").eq(Expr::lit(3.0)),
            Expr::col("b").ne(Expr::lit(2.0)),
            // Composite: general program gathers through the encodings.
            Expr::col("x")
                .mul(Expr::lit(2.0))
                .gt(Expr::col("kr").add(Expr::lit(1.0))),
            Expr::col("x")
                .lt(Expr::lit(1.0))
                .and(Expr::col("kr").ge(Expr::lit(0.0))),
        ];
        for p in &preds {
            check_pred(p, &t);
        }
    }

    #[test]
    fn encoded_fast_paths_engage_and_match_plain_columns() {
        let t = encoded_pred_table();
        let mut scratch = EvalScratch::new();
        // Dict comparison binds the code-membership fast path.
        let p = Expr::col("x").lt(Expr::lit(0.25)).compile();
        let bound = p.bind(&t).unwrap();
        assert!(matches!(bound.fast, Some(BoundFast::DictInSet { .. })));
        let q = Expr::col("x_plain").lt(Expr::lit(0.25)).compile();
        let plain = q.bind(&t).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        bound.fill(3, 190, &mut a, &mut scratch);
        plain.fill(3, 190, &mut b, &mut scratch);
        assert_eq!(a, b);
        bound.refine(&mut a, &mut scratch);
        plain.refine(&mut b, &mut scratch);
        assert_eq!(a, b);
        // RLE between binds the per-run fast path.
        let p = Expr::col("kr")
            .between(Expr::lit(-2.0), Expr::lit(6.0))
            .compile();
        let bound = p.bind(&t).unwrap();
        assert!(matches!(bound.fast, Some(BoundFast::RleRuns { .. })));
        let q = Expr::col("kr_plain")
            .between(Expr::lit(-2.0), Expr::lit(6.0))
            .compile();
        let plain = q.bind(&t).unwrap();
        bound.fill(0, 200, &mut a, &mut scratch);
        plain.fill(0, 200, &mut b, &mut scratch);
        assert_eq!(a, b);
        // Refine over a sparse, partly out-of-order candidate set.
        let cand: Vec<u32> = (0..200).step_by(3).chain([7, 4, 180]).collect();
        let (mut a, mut b) = (cand.clone(), cand);
        bound.refine(&mut a, &mut scratch);
        plain.refine(&mut b, &mut scratch);
        assert_eq!(a, b);
    }

    #[test]
    fn encoded_gathers_are_bit_identical_to_plain() {
        let t = encoded_pred_table();
        let e_enc = Expr::col("x").mul(Expr::lit(1.0).add(Expr::col("kr")));
        let e_plain = Expr::col("x_plain").mul(Expr::lit(1.0).add(Expr::col("kr_plain")));
        let rows: Vec<u32> = (0..200).collect();
        let a = e_enc.eval(&t, &rows).unwrap();
        let b = e_plain.eval(&t, &rows).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Arbitrary (non-increasing) selection order still gathers right.
        let rev: Vec<u32> = (0..200).rev().collect();
        let c = e_enc.eval(&t, &rev).unwrap();
        for (i, v) in c.iter().enumerate() {
            assert_eq!(v.to_bits(), a[199 - i].to_bits());
        }
    }

    #[test]
    fn dict16_pushdown_and_gathers_match_plain() {
        // 300 distinct values force u16 codes.
        let n = 2000usize;
        let vals: Vec<f64> = (0..n)
            .map(|i| ((i * 7) % 300) as f64 * 0.25 - 20.0)
            .collect();
        let mut t = Table::new("w");
        t.add_column("v", Column::f64(vals.clone()).dict_encode().unwrap())
            .unwrap();
        t.add_column("v_plain", Column::f64(vals)).unwrap();
        assert_eq!(t.column("v").unwrap().storage_name(), "Dict16<F64>");
        // The comparison binds the 65536-bit code-membership fast path.
        let p = Expr::col("v").lt(Expr::lit(11.5)).compile();
        let bound = p.bind(&t).unwrap();
        assert!(matches!(bound.fast, Some(BoundFast::Dict16InSet { .. })));
        let q = Expr::col("v_plain").lt(Expr::lit(11.5)).compile();
        let plain = q.bind(&t).unwrap();
        let mut scratch = EvalScratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        bound.fill(5, n - 3, &mut a, &mut scratch);
        plain.fill(5, n - 3, &mut b, &mut scratch);
        assert_eq!(a, b);
        bound.refine(&mut a, &mut scratch);
        plain.refine(&mut b, &mut scratch);
        assert_eq!(a, b);
        // Composite predicates and gathers go through the codes too.
        check_pred(
            &Expr::col("v").between(Expr::lit(-5.0), Expr::lit(30.25)),
            &t,
        );
        let e = Expr::col("v").mul(Expr::lit(1.5));
        let f = Expr::col("v_plain").mul(Expr::lit(1.5));
        let rows: Vec<u32> = (0..n as u32).collect();
        for (x, y) in e
            .eval(&t, &rows)
            .unwrap()
            .iter()
            .zip(&f.eval(&t, &rows).unwrap())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn encoded_f32_inner_errors_instead_of_panicking() {
        let mut t = Table::new("f");
        let codes: Vec<u8> = vec![0, 1, 0];
        t.add_column(
            "h",
            Column::dict(codes, Column::f32(vec![1.0, 2.0])).unwrap(),
        )
        .unwrap();
        assert_eq!(
            Expr::col("h")
                .add(Expr::lit(1.0))
                .eval(&t, &[0])
                .unwrap_err(),
            TableError::TypeMismatch {
                column: "h".into(),
                expected: NUMERIC_EXPECTED,
                found: "F32",
            }
        );
    }

    #[test]
    fn nan_comparisons_are_ieee() {
        let mut t = Table::new("n");
        t.add_column("x", Column::f64(vec![1.0, f64::NAN])).unwrap();
        let rows = [0u32, 1];
        assert_eq!(
            Expr::col("x").lt(Expr::lit(2.0)).eval(&t, &rows).unwrap(),
            vec![true, false]
        );
        assert_eq!(
            Expr::col("x").ne(Expr::lit(2.0)).eval(&t, &rows).unwrap(),
            vec![true, true]
        );
        assert_eq!(
            Expr::col("x")
                .between(Expr::lit(0.0), Expr::lit(2.0))
                .eval(&t, &rows)
                .unwrap(),
            vec![true, false]
        );
    }

    #[test]
    fn predicate_missing_or_non_numeric_column_errors() {
        let mut t = pred_table();
        t.add_column("half", Column::f32(vec![0.0; 200])).unwrap();
        assert!(matches!(
            Expr::col("nope").lt(Expr::lit(1.0)).eval(&t, &[0]),
            Err(TableError::NoSuchColumn(_))
        ));
        assert_eq!(
            Expr::col("half")
                .lt(Expr::lit(1.0))
                .eval(&t, &[0])
                .unwrap_err(),
            TableError::TypeMismatch {
                column: "half".into(),
                expected: NUMERIC_EXPECTED,
                found: "F32",
            }
        );
    }
}
