//! The logical query-plan layer: declarative scan-filter-group-aggregate
//! plans lowered onto the fused batch executor ([`crate::fused`]).
//!
//! The paper's thesis is that reproducible SUM is a *drop-in operator*
//! inside a real query engine (§VI-E) — which means queries should be
//! expressible as plans over arbitrary aggregates and group keys, not as
//! hand-written `run_qN` functions. A [`QueryPlan`] names the source
//! table, a conjunctive filter, a [`GroupKey`] and a list of
//! [`AggCall`]s; [`QueryPlan::execute`] validates it against a concrete
//! [`Table`] (missing or mistyped columns surface as [`TableError`]s, not
//! panics), lowers it to a physical [`FusedQuery`], runs the fused
//! zero-copy scan, and finalizes the per-group states into a
//! [`PlanResult`].
//!
//! ```
//! use rfa_engine::plan::{AggCall, QueryPlan};
//! use rfa_engine::{Column, ExecOptions, Expr, SumBackend, Table};
//!
//! let mut t = Table::new("sensors");
//! t.add_column("station", Column::i32(vec![3, 1, 3, 7])).unwrap();
//! t.add_column("temp", Column::f64(vec![21.5, 19.0, 22.5, 18.0])).unwrap();
//!
//! let plan = QueryPlan::scan("sensors")
//!     .filter(Expr::col("temp").lt(Expr::lit(22.0)))
//!     .group_by_key("station")
//!     .agg(AggCall::Count)
//!     .agg(AggCall::Avg(Expr::col("temp")));
//! let result = plan
//!     .execute(&t, SumBackend::ReproUnbuffered, &ExecOptions::serial())
//!     .unwrap();
//! assert_eq!(result.keys, vec![1, 3, 7]); // hash groups, sorted by key
//! assert_eq!(result.columns[0].u64s(), &[1, 1, 1]);
//! ```
//!
//! **Aggregate kinds and reproducibility.** SUM runs on any of the six
//! [`SumBackend`]s with unchanged bit-identity guarantees. COUNT is exact
//! integer arithmetic. AVG is *finalized* from a reproducible SUM state
//! and the group's COUNT — one IEEE division of two bit-reproducible
//! inputs, hence itself bit-reproducible (the same argument as the
//! paper's footnote 2 for derived aggregates). MIN/MAX are comparison
//! folds whose merges keep the earlier row range on ties, making them
//! bit-identical at any thread count. `AVG(e)` shares the per-group SUM
//! state of a `SUM(e)` over the structurally identical expression, so
//! requesting both costs one state array, exactly like the hand-written
//! Q1 operator did.
//!
//! **Output order** is deterministic: dense groups ascend by group id,
//! hash groups ascend by key value, and groups that matched no row are
//! dropped (SQL GROUP BY semantics). An un-grouped plan always yields
//! exactly one row, even when no row matched (SQL aggregate semantics;
//! the engine has no NULL, so over zero rows SUM yields `0.0`, COUNT
//! `0`, AVG `NaN` (`0.0 / 0`), MIN `+∞` and MAX `-∞` — the closest f64
//! stand-ins for SQL's NULL).

use crate::column::{ColRef, Column, EncodingError, Table, TableError};
use crate::expr::{BoolExpr, Expr};
use crate::fused::{run_fused, ExecOptions, FusedError, FusedQuery, GroupKey, GroupSpec};
use crate::q1::PhaseTiming;
use crate::sum_op::{OverflowError, SumBackend};
use rfa_agg::HashKind;
use std::fmt;
use std::time::Instant;

/// One aggregate output column of a [`QueryPlan`].
#[derive(Clone, Debug, PartialEq)]
pub enum AggCall {
    /// `SUM(expr)` through the configured [`SumBackend`].
    Sum(Expr),
    /// `COUNT(*)` — exact integer count of the group's rows.
    Count,
    /// `AVG(expr)` — finalized as reproducible SUM ÷ COUNT. Over the
    /// zero-row group of an un-grouped plan this yields `NaN` (`0.0/0`),
    /// the engine's stand-in for SQL's NULL; grouped plans never expose
    /// the case because empty groups are dropped.
    Avg(Expr),
    /// `MIN(expr)`.
    Min(Expr),
    /// `MAX(expr)`.
    Max(Expr),
}

/// A logical scan-filter-group-aggregate plan, built with the fluent
/// constructors and executed with [`QueryPlan::execute`].
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Source table name, checked against [`Table::name`] at execution.
    pub table: String,
    /// Conjunctive filter (all predicates must hold). Lowering splits
    /// top-level `AND`s into further conjuncts, so single-comparison
    /// pieces take the typed fast filter loops.
    pub filter: Vec<BoolExpr>,
    pub group_by: GroupKey,
    /// Aggregate outputs, in result-column order.
    pub aggs: Vec<AggCall>,
}

/// Errors surfaced by plan validation and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The plan references a column the table lacks, at the wrong type,
    /// or targets a different table.
    Table(TableError),
    /// The plan was executed against a table with a different name.
    WrongTable { expected: String, found: String },
    /// Aggregation overflow (Double backend, MonetDB semantics).
    Overflow(OverflowError),
    /// The hash group-key column contains the reserved value `u32::MAX`
    /// (`-1` on an `I32` column) — a data-dependent error the scan
    /// reports, since no up-front validation can rule it out.
    ReservedKey { col: String },
    /// A dense `encode` fn produced a group id outside `0..groups` for a
    /// value pair present in the data (also data-dependent: `encode` is
    /// only ever called on pairs that actually occur).
    GroupIdOutOfBounds { got: u32, groups: usize },
    /// The plan cannot run on the fused executor as configured (e.g. the
    /// SortedDouble backend, which requires materializing, or a plan with
    /// no aggregates).
    Unsupported(&'static str),
    /// The query's cancellation token tripped (cooperative, checked at
    /// batch boundaries — see [`FusedError::Cancelled`]).
    Cancelled,
    /// The query ran past its `ExecOptions::deadline` budget.
    DeadlineExceeded {
        /// The budget that was exceeded.
        deadline: std::time::Duration,
    },
    /// An encoded column the query touches failed its encoding invariants
    /// (codes out of dictionary range, malformed run ends) — data-
    /// dependent like [`PlanError::ReservedKey`], surfaced by the scan's
    /// up-front validation pass, never a panic.
    Encoding {
        /// Name of the malformed column.
        col: String,
        error: EncodingError,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Table(e) => write!(f, "plan validation failed: {e}"),
            PlanError::WrongTable { expected, found } => {
                write!(
                    f,
                    "plan targets table {expected:?}, executed against {found:?}"
                )
            }
            PlanError::Overflow(e) => write!(f, "{e}"),
            PlanError::ReservedKey { col } => write!(
                f,
                "group key column {col:?} contains the reserved value u32::MAX (-1_i32)"
            ),
            PlanError::GroupIdOutOfBounds { got, groups } => {
                write!(
                    f,
                    "dense group encoding produced id {got} >= groups {groups}"
                )
            }
            PlanError::Unsupported(what) => write!(f, "unsupported plan: {what}"),
            PlanError::Cancelled => write!(f, "query cancelled"),
            PlanError::DeadlineExceeded { deadline } => {
                write!(f, "query exceeded its {deadline:?} deadline")
            }
            PlanError::Encoding { col, error } => write!(f, "column {col:?}: {error}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<TableError> for PlanError {
    fn from(e: TableError) -> Self {
        PlanError::Table(e)
    }
}

impl From<OverflowError> for PlanError {
    fn from(e: OverflowError) -> Self {
        PlanError::Overflow(e)
    }
}

impl From<FusedError> for PlanError {
    fn from(e: FusedError) -> Self {
        match e {
            FusedError::Overflow(o) => PlanError::Overflow(o),
            FusedError::ReservedKey { col } => PlanError::ReservedKey { col },
            FusedError::GroupIdOutOfBounds { got, groups } => {
                PlanError::GroupIdOutOfBounds { got, groups }
            }
            FusedError::Cancelled => PlanError::Cancelled,
            FusedError::DeadlineExceeded { deadline } => PlanError::DeadlineExceeded { deadline },
            FusedError::Encoding { col, error } => PlanError::Encoding { col, error },
        }
    }
}

/// One finalized aggregate output column of a [`PlanResult`]: `f64` for
/// SUM/AVG/MIN/MAX, exact `u64` for COUNT.
#[derive(Clone, Debug, PartialEq)]
pub enum AggColumn {
    F64(Vec<f64>),
    U64(Vec<u64>),
}

impl AggColumn {
    /// The values of a SUM/AVG/MIN/MAX column.
    ///
    /// # Panics
    /// If this is a COUNT column.
    pub fn f64s(&self) -> &[f64] {
        match self {
            AggColumn::F64(v) => v,
            AggColumn::U64(_) => panic!("expected an f64 aggregate column, found COUNT"),
        }
    }

    /// The values of a COUNT column.
    ///
    /// # Panics
    /// If this is not a COUNT column.
    pub fn u64s(&self) -> &[u64] {
        match self {
            AggColumn::U64(v) => v,
            AggColumn::F64(_) => panic!("expected a COUNT column, found an f64 aggregate"),
        }
    }

    /// Number of group rows.
    pub fn len(&self) -> usize {
        match self {
            AggColumn::F64(v) => v.len(),
            AggColumn::U64(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of executing a [`QueryPlan`]: one row per (non-empty) group in
/// deterministic order, with one [`AggColumn`] per [`AggCall`].
#[derive(Clone, Debug)]
pub struct PlanResult {
    /// The group key of each output row: the dense group id for
    /// [`GroupKey::Dense`], the (sign-restored) key value for
    /// [`GroupKey::Hash`], and `0` for the single row of an un-grouped
    /// plan. Rows ascend by this value.
    pub keys: Vec<i64>,
    /// `columns[a]` parallels `plan.aggs[a]`; each holds one value per
    /// entry of [`PlanResult::keys`].
    pub columns: Vec<AggColumn>,
    pub timing: PhaseTiming,
}

impl QueryPlan {
    /// Starts a plan scanning `table` (no filter, un-grouped, no
    /// aggregates yet).
    pub fn scan(table: impl Into<String>) -> Self {
        QueryPlan {
            table: table.into(),
            filter: Vec::new(),
            group_by: GroupKey::None,
            aggs: Vec::new(),
        }
    }

    /// Adds a filter conjunct.
    pub fn filter(mut self, pred: BoolExpr) -> Self {
        self.filter.push(pred);
        self
    }

    /// Sets the grouping mode directly.
    pub fn group_by(mut self, key: GroupKey) -> Self {
        self.group_by = key;
        self
    }

    /// Groups by a dictionary-encoded `U8` column pair mapped to dense
    /// ids in `0..groups` by `encode` (the Q1 shape).
    pub fn group_by_dense(
        self,
        a: impl Into<ColRef>,
        b: impl Into<ColRef>,
        encode: fn(u8, u8) -> u32,
        groups: usize,
    ) -> Self {
        self.group_by(GroupKey::Dense {
            spec: GroupSpec {
                a: a.into(),
                b: b.into(),
                encode,
            },
            groups,
        })
    }

    /// Groups by an arbitrary-cardinality `I32`/`U32`/`U8` key column
    /// through the hash arm, with the paper's identity hashing (the right
    /// default for domain-encoded dense-ish keys; see [`HashKind`]).
    pub fn group_by_key(self, col: impl Into<ColRef>) -> Self {
        self.group_by(GroupKey::Hash {
            col: col.into(),
            hash: HashKind::Identity,
        })
    }

    /// [`QueryPlan::group_by_key`] with an explicit hash function (use
    /// [`HashKind::Multiplicative`] for adversarially clustered keys).
    pub fn group_by_key_with(self, col: impl Into<ColRef>, hash: HashKind) -> Self {
        self.group_by(GroupKey::Hash {
            col: col.into(),
            hash,
        })
    }

    /// Groups by a pair of `U8` columns through the hash arm, packed into
    /// one key as `(a << 8) | b` — the SQL `GROUP BY a, b` shape. Only
    /// observed pairs materialize state (unlike a dense 65 536-id
    /// encoding), and output rows ascend in `(a, b)` lexicographic order.
    pub fn group_by_u8_pair(self, a: impl Into<ColRef>, b: impl Into<ColRef>) -> Self {
        self.group_by(GroupKey::HashPair {
            a: a.into(),
            b: b.into(),
            hash: HashKind::Identity,
        })
    }

    /// Appends an aggregate output column.
    pub fn agg(mut self, call: AggCall) -> Self {
        self.aggs.push(call);
        self
    }

    /// Shorthand for `.agg(AggCall::Sum(e))`.
    pub fn sum(self, e: Expr) -> Self {
        self.agg(AggCall::Sum(e))
    }

    /// Shorthand for `.agg(AggCall::Count)`.
    pub fn count(self) -> Self {
        self.agg(AggCall::Count)
    }

    /// Shorthand for `.agg(AggCall::Avg(e))`.
    pub fn avg(self, e: Expr) -> Self {
        self.agg(AggCall::Avg(e))
    }

    /// Shorthand for `.agg(AggCall::Min(e))`.
    pub fn min(self, e: Expr) -> Self {
        self.agg(AggCall::Min(e))
    }

    /// Shorthand for `.agg(AggCall::Max(e))`.
    pub fn max(self, e: Expr) -> Self {
        self.agg(AggCall::Max(e))
    }

    /// Validates the plan against `table` and executes it on the fused
    /// zero-copy scan pipeline.
    ///
    /// Errors — never panics — when the plan targets a different table,
    /// references a missing or mistyped column, has no aggregates, or
    /// requests [`SumBackend::SortedDouble`] (whose sort requires the
    /// materializing pipeline; the TPC-H wrappers route it there).
    /// Data-dependent conditions no validation can rule out also surface
    /// as errors from the scan itself: a hash key column containing the
    /// reserved `u32::MAX`/`-1_i32` value ([`PlanError::ReservedKey`]),
    /// a dense `encode` fn yielding an id `>= groups` for a pair present
    /// in the data ([`PlanError::GroupIdOutOfBounds`]), and Double
    /// overflow ([`PlanError::Overflow`]).
    pub fn execute(
        &self,
        table: &Table,
        backend: SumBackend,
        opts: &ExecOptions,
    ) -> Result<PlanResult, PlanError> {
        let lowered = self.lower(table)?;
        if backend == SumBackend::SortedDouble {
            return Err(PlanError::Unsupported(
                "SortedDouble requires the materializing pipeline",
            ));
        }
        let run = run_fused(table, &lowered.query, backend, opts)?;
        let t0 = Instant::now();

        // Output group rows, in deterministic order.
        let mut rows: Vec<(i64, usize)> = match &self.group_by {
            GroupKey::None => vec![(0, 0)],
            GroupKey::Dense { .. } => (0..run.counts.len())
                .filter(|&g| run.counts[g] > 0)
                .map(|g| (g as i64, g))
                .collect(),
            GroupKey::Hash { .. } | GroupKey::HashPair { .. } => sort_hash_groups(
                run.keys.as_deref().expect("hash scan returns keys"),
                lowered.key_signed,
            ),
        };
        // (Hash groups only exist once seen, dense empties were dropped;
        // the single un-grouped row is kept even at count 0.)
        debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));

        let columns = self
            .aggs
            .iter()
            .zip(&lowered.outputs)
            .map(|(_, out)| match *out {
                Output::Sum(slot) => {
                    AggColumn::F64(rows.iter().map(|&(_, g)| run.sums[slot][g]).collect())
                }
                Output::Count => AggColumn::U64(rows.iter().map(|&(_, g)| run.counts[g]).collect()),
                Output::Avg(slot) => AggColumn::F64(
                    rows.iter()
                        .map(|&(_, g)| run.sums[slot][g] / run.counts[g] as f64)
                        .collect(),
                ),
                Output::Min(slot) => {
                    AggColumn::F64(rows.iter().map(|&(_, g)| run.mins[slot][g]).collect())
                }
                Output::Max(slot) => {
                    AggColumn::F64(rows.iter().map(|&(_, g)| run.maxs[slot][g]).collect())
                }
            })
            .collect();
        let keys = rows.drain(..).map(|(k, _)| k).collect();
        let mut timing = run.timing;
        timing.other += t0.elapsed();
        Ok(PlanResult {
            keys,
            columns,
            timing,
        })
    }

    /// Validates every column reference and lowers the logical plan to
    /// the physical [`FusedQuery`], sharing one SUM state between SUM and
    /// AVG calls over structurally identical expressions and splitting
    /// top-level `AND` conjunctions so single-comparison pieces take the
    /// typed fast filter loops.
    pub(crate) fn lower(&self, table: &Table) -> Result<Lowered, PlanError> {
        if self.table != table.name {
            return Err(PlanError::WrongTable {
                expected: self.table.clone(),
                found: table.name.clone(),
            });
        }
        if self.aggs.is_empty() {
            return Err(PlanError::Unsupported("plan has no aggregates"));
        }

        // Filter predicates: split top-level ANDs (a conjunction of
        // conjuncts filters the identical rows in the identical order),
        // then validate every column reference via compile-and-bind.
        let mut filter = Vec::new();
        for pred in &self.filter {
            split_conjuncts(pred, &mut filter);
        }
        for pred in &filter {
            pred.compile().bind(table)?;
        }

        // Group key columns, validated by *logical* type: a dictionary-
        // or RLE-encoded U8 column groups exactly like a plain one (the
        // executor reads keys through the encoding), so lowering is
        // encoding-agnostic.
        let u8_key = |name: &ColRef| -> Result<(), PlanError> {
            match table.column(name)?.logical() {
                Column::U8(_) => Ok(()),
                other => Err(PlanError::Table(TableError::TypeMismatch {
                    column: name.to_string(),
                    expected: "U8",
                    found: other.type_name(),
                })),
            }
        };
        let mut key_signed = false;
        match &self.group_by {
            GroupKey::None => {}
            GroupKey::Dense { spec, .. } => {
                u8_key(&spec.a)?;
                u8_key(&spec.b)?;
            }
            GroupKey::Hash { col, .. } => match table.column(col)?.logical() {
                Column::I32(_) => key_signed = true,
                Column::U32(_) | Column::U8(_) => {}
                other => {
                    return Err(PlanError::Table(TableError::TypeMismatch {
                        column: col.to_string(),
                        expected: "I32, U32 or U8",
                        found: other.type_name(),
                    }))
                }
            },
            GroupKey::HashPair { a, b, .. } => {
                u8_key(a)?;
                u8_key(b)?;
            }
        }

        // Aggregate expressions: validate via compile-and-bind (checks
        // every referenced column exists with numeric storage), dedup
        // SUM inputs.
        let mut query = FusedQuery {
            filter,
            sums: Vec::new(),
            mins: Vec::new(),
            maxs: Vec::new(),
            group_by: self.group_by.clone(),
        };
        let mut outputs = Vec::with_capacity(self.aggs.len());
        for call in &self.aggs {
            if let AggCall::Sum(e) | AggCall::Avg(e) | AggCall::Min(e) | AggCall::Max(e) = call {
                e.compile().bind(table)?;
            }
            outputs.push(match call {
                AggCall::Sum(e) => Output::Sum(intern(&mut query.sums, e)),
                AggCall::Avg(e) => Output::Avg(intern(&mut query.sums, e)),
                AggCall::Count => Output::Count,
                AggCall::Min(e) => Output::Min(intern(&mut query.mins, e)),
                AggCall::Max(e) => Output::Max(intern(&mut query.maxs, e)),
            });
        }
        Ok(Lowered {
            query,
            outputs,
            key_signed,
        })
    }
}

/// Orders the hash arm's first-seen group slots by output key.
///
/// Keys are distinct by construction (one table slot per key), so the
/// order is fully decided by the key alone. That lets the sort run on a
/// packed `u64` — the key biased into 33 unsigned bits (covering both
/// `i32` and `u32` source domains) above the 31-bit group id — with a
/// three-pass LSD radix over just the key bits. Counting sort per digit
/// is deterministic, and ties cannot arise, so the result is the exact
/// permutation `sort_unstable` on `(key, gid)` tuples produced before.
fn sort_hash_groups(keys: &[u32], signed: bool) -> Vec<(i64, usize)> {
    const BIAS: i64 = 1 << 31;
    const GID_BITS: u32 = 31;
    debug_assert!(keys.len() < (1 << GID_BITS));
    let mut a: Vec<u64> = if signed {
        keys.iter()
            .enumerate()
            .map(|(g, &k)| (((k as i32 as i64 + BIAS) as u64) << GID_BITS) | g as u64)
            .collect()
    } else {
        keys.iter()
            .enumerate()
            .map(|(g, &k)| (((k as i64 + BIAS) as u64) << GID_BITS) | g as u64)
            .collect()
    };
    let mut b = vec![0u64; a.len()];
    // Three 11-bit digits cover bits 31..64 — the full biased key range
    // [0, 3·2^31) < 2^33; the gid bits below never decide the order.
    for shift in [GID_BITS, GID_BITS + 11, GID_BITS + 22] {
        let mut hist = [0u32; 1 << 11];
        for &x in &a {
            hist[((x >> shift) & 0x7FF) as usize] += 1;
        }
        let mut sum = 0u32;
        for h in hist.iter_mut() {
            let c = *h;
            *h = sum;
            sum += c;
        }
        for &x in &a {
            let d = ((x >> shift) & 0x7FF) as usize;
            b[hist[d] as usize] = x;
            hist[d] += 1;
        }
        core::mem::swap(&mut a, &mut b);
    }
    a.iter()
        .map(|&p| {
            (
                (p >> GID_BITS) as i64 - BIAS,
                (p & ((1 << GID_BITS) - 1)) as usize,
            )
        })
        .collect()
}

/// Finds or appends `e` in the state-input list, returning its slot.
fn intern(exprs: &mut Vec<Expr>, e: &Expr) -> usize {
    if let Some(i) = exprs.iter().position(|x| x == e) {
        i
    } else {
        exprs.push(e.clone());
        exprs.len() - 1
    }
}

/// Splits top-level `AND`s into individual conjuncts (recursively), so
/// `a AND b AND c` filters as three refine passes over the batch.
fn split_conjuncts(e: &BoolExpr, out: &mut Vec<BoolExpr>) {
    if let BoolExpr::And(a, b) = e {
        split_conjuncts(a, out);
        split_conjuncts(b, out);
    } else {
        out.push(e.clone());
    }
}

/// A validated plan lowered to physical form.
pub(crate) struct Lowered {
    pub(crate) query: FusedQuery,
    /// Per [`AggCall`]: which state array (by kind and slot) finalizes it.
    outputs: Vec<Output>,
    /// Hash keys came from an `I32` column (restore the sign on output).
    key_signed: bool,
}

enum Output {
    Sum(usize),
    Count,
    Avg(usize),
    Min(usize),
    Max(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor_table() -> Table {
        let mut t = Table::new("sensors");
        t.add_column("station", Column::i32(vec![3, 1, 3, 7, 1, 3]))
            .unwrap();
        t.add_column(
            "temp",
            Column::f64(vec![21.5, 19.0, 22.5, 18.0, 20.0, 25.0]),
        )
        .unwrap();
        t.add_column(
            "humidity",
            Column::f64(vec![0.50, 0.40, 0.55, 0.35, 0.45, 0.60]),
        )
        .unwrap();
        t.add_column("flag", Column::u8(vec![0, 1, 0, 1, 0, 1]))
            .unwrap();
        t.add_column("noise", Column::f32(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]))
            .unwrap();
        t
    }

    #[test]
    fn hash_grouped_plan_with_all_aggregate_kinds() {
        let t = sensor_table();
        let plan = QueryPlan::scan("sensors")
            .group_by_key("station")
            .sum(Expr::col("temp"))
            .count()
            .avg(Expr::col("temp"))
            .min(Expr::col("temp"))
            .max(Expr::col("temp"));
        let r = plan
            .execute(&t, SumBackend::ReproUnbuffered, &ExecOptions::serial())
            .unwrap();
        assert_eq!(r.keys, vec![1, 3, 7]);
        assert_eq!(r.columns[0].f64s(), &[39.0, 69.0, 18.0]);
        assert_eq!(r.columns[1].u64s(), &[2, 3, 1]);
        assert_eq!(r.columns[2].f64s(), &[19.5, 23.0, 18.0]);
        assert_eq!(r.columns[3].f64s(), &[19.0, 21.5, 18.0]);
        assert_eq!(r.columns[4].f64s(), &[20.0, 25.0, 18.0]);
    }

    /// Lowering is encoding-agnostic: the same plan over a table whose
    /// measure and hash-key columns are `Dict16`-encoded (u16 codes)
    /// validates, executes, and finalizes bit-identically to the plain
    /// twin — the encoded measure takes the algebraic deposit path.
    #[test]
    fn plans_over_dict16_columns_match_plain_bitwise() {
        let n = 5_000usize;
        let key: Vec<i32> = (0..n).map(|i| (i * 13 % 700) as i32).collect();
        let val: Vec<f64> = (0..n).map(|i| (i % 400) as f64 * 0.1875 - 31.0).collect();
        let mut plain = Table::new("t");
        plain.add_column("key", Column::i32(key.clone())).unwrap();
        plain.add_column("val", Column::f64(val.clone())).unwrap();
        let mut enc = Table::new("t");
        for (name, col) in [("key", Column::i32(key)), ("val", Column::f64(val))] {
            let encoded = Column::dict_encode(&col).unwrap();
            assert!(encoded.storage_name().starts_with("Dict16<"), "{name}");
            enc.add_column(name, encoded).unwrap();
        }
        let plan = QueryPlan::scan("t")
            .filter(Expr::col("val").ge(Expr::lit(-30.0)))
            .group_by_key("key")
            .sum(Expr::col("val"))
            .avg(Expr::col("val"))
            .min(Expr::col("val"))
            .max(Expr::col("val"))
            .count();
        for backend in [SumBackend::ReproUnbuffered, SumBackend::Double] {
            let want = plan
                .execute(&plain, backend, &ExecOptions::serial())
                .unwrap();
            let got = plan.execute(&enc, backend, &ExecOptions::serial()).unwrap();
            assert_eq!(got.keys, want.keys, "{backend:?}");
            for (c, (a, b)) in want.columns.iter().zip(got.columns.iter()).enumerate() {
                match (a, b) {
                    (AggColumn::F64(xs), AggColumn::F64(ys)) => {
                        for (x, y) in xs.iter().zip(ys.iter()) {
                            assert_eq!(x.to_bits(), y.to_bits(), "{backend:?} col {c}");
                        }
                    }
                    (AggColumn::U64(xs), AggColumn::U64(ys)) => assert_eq!(xs, ys),
                    _ => panic!("mismatched result column kinds"),
                }
            }
        }
    }

    #[test]
    fn avg_shares_the_sum_state_and_divides_its_bits() {
        let t = sensor_table();
        let e = || Expr::col("temp").mul(Expr::col("humidity"));
        let plan = QueryPlan::scan("sensors")
            .group_by_key("station")
            .sum(e())
            .avg(e())
            .count();
        let lowered = plan.lower(&t).unwrap();
        assert_eq!(lowered.query.sums.len(), 1, "SUM and AVG share one state");
        let r = plan
            .execute(
                &t,
                SumBackend::ReproBuffered { buffer_size: 32 },
                &ExecOptions::serial(),
            )
            .unwrap();
        for g in 0..r.keys.len() {
            let sum = r.columns[0].f64s()[g];
            let count = r.columns[2].u64s()[g];
            assert_eq!(
                r.columns[1].f64s()[g].to_bits(),
                (sum / count as f64).to_bits()
            );
        }
    }

    #[test]
    fn ungrouped_plan_yields_one_row_even_when_empty() {
        let t = sensor_table();
        let plan = QueryPlan::scan("sensors")
            .filter(Expr::col("temp").lt(Expr::lit(-100.0)))
            .sum(Expr::col("temp"))
            .count();
        let r = plan
            .execute(&t, SumBackend::Double, &ExecOptions::serial())
            .unwrap();
        assert_eq!(r.keys, vec![0]);
        assert_eq!(r.columns[0].f64s(), &[0.0]);
        assert_eq!(r.columns[1].u64s(), &[0]);
    }

    #[test]
    fn dense_grouping_drops_empty_groups_and_orders_by_id() {
        let t = sensor_table();
        fn encode(a: u8, _b: u8) -> u32 {
            // Ids 0 and 2 of a 4-id domain; 1 and 3 never occur.
            (a as u32) * 2
        }
        let plan = QueryPlan::scan("sensors")
            .group_by_dense("flag", "flag", encode, 4)
            .count()
            .max(Expr::col("temp"));
        let r = plan
            .execute(&t, SumBackend::ReproUnbuffered, &ExecOptions::serial())
            .unwrap();
        assert_eq!(r.keys, vec![0, 2]);
        assert_eq!(r.columns[0].u64s(), &[3, 3]);
        // flag 0 rows: 21.5, 22.5, 20.0; flag 1 rows: 19.0, 18.0, 25.0.
        assert_eq!(r.columns[1].f64s(), &[22.5, 25.0]);
    }

    #[test]
    fn u8_pair_grouping_matches_dense_encoding_bitwise() {
        // The same (flag, grade)-style pair grouped (a) densely with an
        // encode fn and (b) through the packed hash-pair arm: identical
        // per-group bits, with pair keys in lexicographic order.
        let n = 4_000;
        let mut t = Table::new("t");
        let a: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let b: Vec<u8> = (0..n).map(|i| (i % 5) as u8).collect();
        let v: Vec<f64> = (0..n)
            .map(|i| (i % 101) as f64 * 0.125 - 4.0 + 2.5e-16)
            .collect();
        t.add_column("a", Column::u8(a.clone())).unwrap();
        t.add_column("b", Column::u8(b.clone())).unwrap();
        t.add_column("v", Column::f64(v)).unwrap();
        fn encode(a: u8, b: u8) -> u32 {
            ((a as u32) << 8) | b as u32
        }
        let aggs = |p: QueryPlan| p.sum(Expr::col("v")).count().avg(Expr::col("v"));
        let dense = aggs(QueryPlan::scan("t").group_by_dense("a", "b", encode, 1 << 16));
        let pair = aggs(QueryPlan::scan("t").group_by_u8_pair("a", "b"));
        for backend in [SumBackend::ReproUnbuffered, SumBackend::Double] {
            let d = dense.execute(&t, backend, &ExecOptions::serial()).unwrap();
            for opts in [
                ExecOptions::serial(),
                ExecOptions {
                    threads: 4,
                    batch_rows: 57,
                    morsel_rows: 311,
                    ..ExecOptions::default()
                },
            ] {
                let h = pair.execute(&t, backend, &opts).unwrap();
                assert_eq!(d.keys, h.keys, "{backend:?} {opts:?}");
                assert_eq!(d.columns[1], h.columns[1]);
                for c in [0usize, 2] {
                    for (x, y) in d.columns[c].f64s().iter().zip(h.columns[c].f64s()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{backend:?} {opts:?} col {c}");
                    }
                }
            }
        }
    }

    /// Satellite: plan-level diagnostics name the column and both types —
    /// pinned as exact strings.
    #[test]
    fn plan_error_messages_are_actionable() {
        assert_eq!(
            PlanError::Table(TableError::TypeMismatch {
                column: "station".into(),
                expected: crate::expr::NUMERIC_EXPECTED,
                found: "F32",
            })
            .to_string(),
            "plan validation failed: column \"station\" is F32, expected F64, I32, U32 or U8"
        );
        assert_eq!(
            PlanError::WrongTable {
                expected: "lineitem".into(),
                found: "sensors".into(),
            }
            .to_string(),
            "plan targets table \"lineitem\", executed against \"sensors\""
        );
        assert_eq!(
            PlanError::ReservedKey { col: "k".into() }.to_string(),
            "group key column \"k\" contains the reserved value u32::MAX (-1_i32)"
        );
        assert_eq!(
            PlanError::GroupIdOutOfBounds { got: 9, groups: 2 }.to_string(),
            "dense group encoding produced id 9 >= groups 2"
        );
    }

    #[test]
    fn negative_i32_keys_round_trip_sign() {
        let mut t = Table::new("t");
        t.add_column("k", Column::i32(vec![-5, 3, -5, 3, 9]))
            .unwrap();
        t.add_column("v", Column::f64(vec![1.0, 2.0, 3.0, 4.0, 5.0]))
            .unwrap();
        let plan = QueryPlan::scan("t")
            .group_by_key_with("k", HashKind::Multiplicative)
            .sum(Expr::col("v"));
        let r = plan
            .execute(&t, SumBackend::ReproUnbuffered, &ExecOptions::serial())
            .unwrap();
        assert_eq!(r.keys, vec![-5, 3, 9]);
        assert_eq!(r.columns[0].f64s(), &[4.0, 6.0, 5.0]);
    }

    #[test]
    fn u32_key_columns_group_through_the_hash_arm() {
        let mut t = Table::new("t");
        t.add_column("k", Column::u32(vec![2_000_000_000u32, 7, 2_000_000_000]))
            .unwrap();
        t.add_column("v", Column::f64(vec![1.5, 2.0, 0.5])).unwrap();
        let plan = QueryPlan::scan("t").group_by_key("k").sum(Expr::col("v"));
        let r = plan
            .execute(&t, SumBackend::ReproUnbuffered, &ExecOptions::serial())
            .unwrap();
        assert_eq!(r.keys, vec![7, 2_000_000_000]);
        assert_eq!(r.columns[0].f64s(), &[2.0, 2.0]);
    }

    // --- satellite: error paths surface TableError, never panic ---------

    #[test]
    fn missing_filter_column_errors() {
        let t = sensor_table();
        let plan = QueryPlan::scan("sensors")
            .filter(Expr::col("nope").lt(Expr::lit(1.0)))
            .count();
        assert_eq!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Table(TableError::NoSuchColumn("nope".into()))
        );
    }

    #[test]
    fn non_numeric_filter_column_errors() {
        let t = sensor_table();
        // noise is F32, which no expression can read.
        let plan = QueryPlan::scan("sensors")
            .filter(Expr::col("noise").lt(Expr::lit(1.0)))
            .count();
        assert_eq!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Table(TableError::TypeMismatch {
                column: "noise".into(),
                expected: crate::expr::NUMERIC_EXPECTED,
                found: "F32",
            })
        );
        // Integer columns, in contrast, are valid scalar operands: the
        // widened comparison filters the I32 station column.
        let plan = QueryPlan::scan("sensors")
            .filter(Expr::col("station").le(Expr::lit(3.0)))
            .count();
        let r = plan
            .execute(&t, SumBackend::Double, &ExecOptions::serial())
            .unwrap();
        assert_eq!(r.columns[0].u64s(), &[5]);
    }

    #[test]
    fn missing_and_mistyped_aggregate_columns_error() {
        let t = sensor_table();
        let plan = QueryPlan::scan("sensors").sum(Expr::col("nope"));
        assert_eq!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Table(TableError::NoSuchColumn("nope".into()))
        );
        let plan = QueryPlan::scan("sensors").avg(Expr::col("noise"));
        assert!(matches!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Table(TableError::TypeMismatch {
                expected: crate::expr::NUMERIC_EXPECTED,
                ..
            })
        ));
    }

    #[test]
    fn bad_group_keys_error() {
        let t = sensor_table();
        let plan = QueryPlan::scan("sensors").group_by_key("absent").count();
        assert_eq!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Table(TableError::NoSuchColumn("absent".into()))
        );
        // A float column cannot be a hash key.
        let plan = QueryPlan::scan("sensors").group_by_key("temp").count();
        assert!(matches!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Table(TableError::TypeMismatch {
                expected: "I32, U32 or U8",
                ..
            })
        ));
        // Neither leg of a U8 pair may be anything but U8.
        let plan = QueryPlan::scan("sensors")
            .group_by_u8_pair("flag", "station")
            .count();
        assert!(matches!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Table(TableError::TypeMismatch { expected: "U8", .. })
        ));
        // Dense keys must be U8 columns.
        fn encode(_: u8, _: u8) -> u32 {
            0
        }
        let plan = QueryPlan::scan("sensors")
            .group_by_dense("station", "flag", encode, 1)
            .count();
        assert!(matches!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Table(TableError::TypeMismatch { expected: "U8", .. })
        ));
    }

    #[test]
    fn wrong_table_and_unsupported_plans_error() {
        let t = sensor_table();
        let plan = QueryPlan::scan("lineitem").count();
        assert_eq!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::WrongTable {
                expected: "lineitem".into(),
                found: "sensors".into(),
            }
        );
        let plan = QueryPlan::scan("sensors");
        assert_eq!(
            plan.execute(&t, SumBackend::Double, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Unsupported("plan has no aggregates")
        );
        let plan = QueryPlan::scan("sensors").count();
        assert_eq!(
            plan.execute(&t, SumBackend::SortedDouble, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Unsupported("SortedDouble requires the materializing pipeline")
        );
    }

    #[test]
    fn data_dependent_scan_errors_surface_through_execute() {
        // Reserved hash key value -1.
        let mut t = Table::new("t");
        t.add_column("k", Column::i32(vec![5, -1])).unwrap();
        t.add_column("v", Column::f64(vec![1.0, 2.0])).unwrap();
        let plan = QueryPlan::scan("t").group_by_key("k").sum(Expr::col("v"));
        assert_eq!(
            plan.execute(&t, SumBackend::ReproUnbuffered, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::ReservedKey { col: "k".into() }
        );
        // Dense encode out of range for a pair present in the data.
        let t = sensor_table();
        fn bad_encode(_: u8, _: u8) -> u32 {
            9
        }
        let plan = QueryPlan::scan("sensors")
            .group_by_dense("flag", "flag", bad_encode, 2)
            .count();
        assert_eq!(
            plan.execute(&t, SumBackend::ReproUnbuffered, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::GroupIdOutOfBounds { got: 9, groups: 2 }
        );
    }

    #[test]
    fn ungrouped_avg_over_zero_rows_is_nan() {
        let t = sensor_table();
        let plan = QueryPlan::scan("sensors")
            .filter(Expr::col("temp").lt(Expr::lit(-100.0)))
            .avg(Expr::col("temp"))
            .min(Expr::col("temp"))
            .max(Expr::col("temp"));
        let r = plan
            .execute(&t, SumBackend::ReproUnbuffered, &ExecOptions::serial())
            .unwrap();
        assert!(r.columns[0].f64s()[0].is_nan(), "AVG of no rows is NaN");
        assert_eq!(r.columns[1].f64s()[0], f64::INFINITY);
        assert_eq!(r.columns[2].f64s()[0], f64::NEG_INFINITY);
    }

    #[test]
    fn validation_runs_before_execution_errors() {
        // A broken plan on a SortedDouble backend reports the *table*
        // error: validation happens before backend routing.
        let t = sensor_table();
        let plan = QueryPlan::scan("sensors").sum(Expr::col("nope"));
        assert!(matches!(
            plan.execute(&t, SumBackend::SortedDouble, &ExecOptions::serial())
                .unwrap_err(),
            PlanError::Table(TableError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn hash_grouped_plan_is_thread_count_invariant() {
        // 2^12 keys over 20k rows, all aggregate kinds, repro backends:
        // {1, 2, 8} threads must agree bitwise.
        let n = 20_000;
        let mut t = Table::new("wide");
        t.add_column(
            "k",
            Column::i32(
                (0..n)
                    .map(|i| ((i * 2_654_435_761usize) % 4096) as i32)
                    .collect::<Vec<_>>(),
            ),
        )
        .unwrap();
        t.add_column(
            "v",
            Column::f64(
                (0..n)
                    .map(|i| ((i * 31) % 1009) as f64 * 1e-3 - 0.5 + 2.5e-16)
                    .collect::<Vec<_>>(),
            ),
        )
        .unwrap();
        let plan = QueryPlan::scan("wide")
            .group_by_key("k")
            .sum(Expr::col("v"))
            .count()
            .avg(Expr::col("v"))
            .min(Expr::col("v"))
            .max(Expr::col("v"));
        for backend in [
            SumBackend::ReproUnbuffered,
            SumBackend::RsumBuffered {
                levels: 2,
                buffer_size: 64,
            },
        ] {
            let serial = plan.execute(&t, backend, &ExecOptions::serial()).unwrap();
            assert_eq!(serial.keys.len(), 4096);
            for threads in [2usize, 8] {
                let opts = ExecOptions {
                    threads,
                    batch_rows: 256,
                    morsel_rows: 1024,
                    ..ExecOptions::default()
                };
                let run = plan.execute(&t, backend, &opts).unwrap();
                assert_eq!(run.keys, serial.keys, "{backend:?} t{threads}");
                for (c, (a, b)) in serial.columns.iter().zip(&run.columns).enumerate() {
                    match (a, b) {
                        (AggColumn::F64(x), AggColumn::F64(y)) => {
                            for (u, v) in x.iter().zip(y) {
                                assert_eq!(
                                    u.to_bits(),
                                    v.to_bits(),
                                    "{backend:?} t{threads} column {c}"
                                );
                            }
                        }
                        (AggColumn::U64(x), AggColumn::U64(y)) => {
                            assert_eq!(x, y, "{backend:?} t{threads} column {c}")
                        }
                        _ => panic!("column kind mismatch"),
                    }
                }
            }
        }
    }
}
