//! TPC-H Query 1 (paper §VI-E, Table IV).
//!
//! ```sql
//! SELECT l_returnflag, l_linestatus,
//!        sum(l_quantity), sum(l_extendedprice),
//!        sum(l_extendedprice * (1 - l_discount)),
//!        sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)),
//!        avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
//! FROM lineitem
//! WHERE l_shipdate <= date '1998-12-01' - interval '90' day
//! GROUP BY l_returnflag, l_linestatus
//! ORDER BY l_returnflag, l_linestatus;
//! ```
//!
//! Q1 is expressed as a [`QueryPlan`] ([`q1_plan`]) — four SUMs, three
//! AVGs and a COUNT over the dense flag/status grouping — lowered onto
//! the fused zero-copy scan of [`crate::fused`]: batches are filtered,
//! projected and aggregated in one pass over a shared-storage table view,
//! with no n-sized intermediates. The AVG columns are finalized by the
//! engine from the shared reproducible SUM states and the exact COUNT
//! (not by post-hoc division here), and each AVG shares its SUM state
//! with the matching SUM column, so the plan still runs exactly five SUM
//! state arrays. The original materializing pipeline (selection vector →
//! gather → expression vectors → grouped aggregation) is kept as
//! [`run_q1_materializing`] / [`run_q1_materializing_par`] — it is the
//! differential-testing reference, and the only pipeline that can serve
//! [`SumBackend::SortedDouble`], whose deterministic total order requires
//! materializing the projected columns before sorting them.
//!
//! CPU time is split into *scan* (selection + projection), *aggregation*
//! and *other* (sorting, finalization). The paper's Table IV reports
//! "aggregation" vs "other", where its "other" is our scan + other; the
//! table-view setup the materializing pipeline used to charge to "other"
//! is now zero-copy and free.

use crate::column::Table;
use crate::expr::Expr;
use crate::fused::ExecOptions;
use crate::plan::{PlanError, QueryPlan};
use crate::sum_op::{
    count_grouped, sum_grouped, sum_grouped_par, OverflowError, SumBackend, SCAN_MORSEL_ROWS,
};
use rayon::prelude::*;
use rfa_workloads::tpch::{Lineitem, Q1_SHIPDATE_CUTOFF};
use std::time::{Duration, Instant};

/// CPU-time split of a query execution (Table IV's rows, with the scan
/// broken out of the paper's "other" bucket).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTiming {
    /// Selection, group-id computation and expression projection.
    pub scan: Duration,
    /// Deposits into the SUM states and their merges.
    pub aggregation: Duration,
    /// Everything else: sorting (SortedDouble), finalization.
    pub other: Duration,
}

impl PhaseTiming {
    pub fn total(&self) -> Duration {
        self.scan + self.aggregation + self.other
    }
}

/// One output row of Q1.
#[derive(Clone, Debug, PartialEq)]
pub struct Q1Row {
    pub returnflag: char,
    pub linestatus: char,
    pub sum_qty: f64,
    pub sum_base_price: f64,
    pub sum_disc_price: f64,
    pub sum_charge: f64,
    pub avg_qty: f64,
    pub avg_price: f64,
    pub avg_disc: f64,
    pub count: u64,
}

const GROUPS: usize = 6; // 3 returnflags × 2 linestatuses (dense encoding)

/// Builds a zero-copy engine [`Table`] view of all lineitem columns the
/// TPC-H queries touch: each column is an `Arc` clone of the workload's
/// storage — a refcount bump, not a data copy.
pub fn lineitem_table(t: &Lineitem) -> Table {
    use crate::column::Column;
    let mut table = Table::new("lineitem");
    table
        .add_column("l_quantity", Column::F64(t.quantity.clone()))
        .expect("fresh table");
    table
        .add_column("l_extendedprice", Column::F64(t.extendedprice.clone()))
        .expect("fresh table");
    table
        .add_column("l_discount", Column::F64(t.discount.clone()))
        .expect("fresh table");
    table
        .add_column("l_tax", Column::F64(t.tax.clone()))
        .expect("fresh table");
    table
        .add_column("l_shipdate", Column::I32(t.shipdate.clone()))
        .expect("fresh table");
    table
        .add_column("l_returnflag", Column::U8(t.returnflag.clone()))
        .expect("fresh table");
    table
        .add_column("l_linestatus", Column::U8(t.linestatus.clone()))
        .expect("fresh table");
    table
        .add_column("l_suppkey", Column::I32(t.suppkey.clone()))
        .expect("fresh table");
    table
}

/// The compressed twin of [`lineitem_table`]: every low-cardinality
/// column is stored encoded, and the fused executor reads the encodings
/// directly (predicates evaluate once per dictionary entry or run,
/// RLE group keys assign ids per run) — results are bit-identical to the
/// plain layout.
///
/// Per column, [`Table::encode_auto`] chooses the best encoding *for the
/// table's current physical order*: RLE when the layout gives the column
/// long runs (at most one run per 4 rows — e.g. the flag pair after
/// [`Lineitem::sorted_by_q1_group`], or `l_shipdate` after
/// [`Lineitem::sorted_by_shipdate`]), else a dictionary when it pays —
/// u8 codes for ≤256 distinct values (`l_quantity` has 50, `l_discount`
/// 11, `l_tax` 9, the flags 3 and 2), u16 codes up to 65 536
/// (`l_suppkey` spans the 10 000-supplier domain) — else plain
/// (`l_extendedprice` is near-unique: a dictionary would cost more than
/// the codes save).
pub fn lineitem_table_encoded(t: &Lineitem) -> Table {
    let mut table = lineitem_table(t);
    table.encode_auto(crate::column::EncodePolicy::default());
    table
}

/// The Q1 logical plan: one filter conjunct and the eight TPC-H output
/// aggregates in SQL order, grouped by the dictionary-encoded flag pair
/// ([`Lineitem::encode_group`] — the same mapping the materializing
/// pipeline uses via [`Lineitem::q1_group`]). Lowering shares SUM states
/// between the SUM and AVG calls, so exactly five SUM state arrays run —
/// the same operator shape (and the same bits) as the hand-written fused
/// query this replaced.
pub fn q1_plan() -> QueryPlan {
    let disc_price =
        || Expr::col("l_extendedprice").mul(Expr::lit(1.0).sub(Expr::col("l_discount")));
    QueryPlan::scan("lineitem")
        .filter(Expr::col("l_shipdate").le(Expr::lit(Q1_SHIPDATE_CUTOFF as f64)))
        .group_by_dense(
            "l_returnflag",
            "l_linestatus",
            Lineitem::encode_group,
            GROUPS,
        )
        .sum(Expr::col("l_quantity"))
        .sum(Expr::col("l_extendedprice"))
        .sum(disc_price())
        .sum(disc_price().mul(Expr::lit(1.0).add(Expr::col("l_tax"))))
        .avg(Expr::col("l_quantity"))
        .avg(Expr::col("l_extendedprice"))
        .avg(Expr::col("l_discount"))
        .count()
}

/// The pinned Q1 SQL text: parsing and lowering this through
/// [`crate::sql`] produces results bit-identical to [`q1_plan`] (the SQL
/// groups through the hash-pair arm rather than the dense dictionary
/// encoding, but every group receives the identical value sequence, and
/// both output orders ascend by `(l_returnflag, l_linestatus)`). The
/// date cutoff is inlined as the day number behind
/// [`Q1_SHIPDATE_CUTOFF`], since the engine stores dates as days since
/// 1992-01-01.
pub fn q1_sql() -> String {
    format!(
        "SELECT l_returnflag, l_linestatus, \
         SUM(l_quantity), SUM(l_extendedprice), \
         SUM(l_extendedprice * (1 - l_discount)), \
         SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)), \
         AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*) \
         FROM lineitem \
         WHERE l_shipdate <= {Q1_SHIPDATE_CUTOFF} \
         GROUP BY l_returnflag, l_linestatus"
    )
}

/// Assembles Q1 output rows from per-group sums and counts.
fn build_q1_rows(
    sum_qty: &[f64],
    sum_price: &[f64],
    sum_disc_price: &[f64],
    sum_charge: &[f64],
    sum_disc: &[f64],
    counts: &[u64],
) -> Vec<Q1Row> {
    let mut rows = Vec::new();
    for g in 0..GROUPS {
        if counts[g] == 0 {
            continue; // (A, O) never occurs in TPC-H data
        }
        let c = counts[g] as f64;
        let (rf, ls) = Lineitem::decode_group(g as u32);
        rows.push(Q1Row {
            returnflag: rf,
            linestatus: ls,
            sum_qty: sum_qty[g],
            sum_base_price: sum_price[g],
            sum_disc_price: sum_disc_price[g],
            sum_charge: sum_charge[g],
            avg_qty: sum_qty[g] / c,
            avg_price: sum_price[g] / c,
            avg_disc: sum_disc[g] / c,
            count: counts[g],
        });
    }
    rows
}

/// Executes Q1 serially through the fused pipeline (materializing for
/// [`SumBackend::SortedDouble`]).
pub fn run_q1(
    lineitem: &Lineitem,
    backend: SumBackend,
) -> Result<(Vec<Q1Row>, PhaseTiming), OverflowError> {
    run_q1_with(lineitem, backend, &ExecOptions::serial())
}

/// Executes Q1 morsel-parallel on the work-stealing pool. Bit-identical
/// to [`run_q1`] for *every* backend: repro states merge exactly, the
/// sorted baseline re-sorts into the serial total order, and plain
/// doubles deliberately scan serially (see [`crate::fused`]).
pub fn run_q1_par(
    lineitem: &Lineitem,
    backend: SumBackend,
) -> Result<(Vec<Q1Row>, PhaseTiming), OverflowError> {
    run_q1_with(lineitem, backend, &ExecOptions::parallel())
}

/// Executes Q1 with explicit execution options (thread budget, batch and
/// morsel sizing) by lowering [`q1_plan`] onto the fused executor. The
/// result is bit-identical to [`run_q1_materializing`] for every backend
/// and any options — asserted by the proptest suite.
pub fn run_q1_with(
    lineitem: &Lineitem,
    backend: SumBackend,
    opts: &ExecOptions,
) -> Result<(Vec<Q1Row>, PhaseTiming), OverflowError> {
    if backend == SumBackend::SortedDouble {
        return if opts.threads > 1 {
            run_q1_materializing_par(lineitem, backend)
        } else {
            run_q1_materializing(lineitem, backend)
        };
    }
    let table = lineitem_table(lineitem);
    let result = q1_plan()
        .execute(&table, backend, opts)
        .map_err(|e| match e {
            PlanError::Overflow(o) => o,
            other => unreachable!("the engine-built Q1 plan is valid: {other}"),
        })?;
    let t0 = Instant::now();
    let mut rows = Vec::with_capacity(result.keys.len());
    for (i, &gid) in result.keys.iter().enumerate() {
        let (returnflag, linestatus) = Lineitem::decode_group(gid as u32);
        rows.push(Q1Row {
            returnflag,
            linestatus,
            sum_qty: result.columns[0].f64s()[i],
            sum_base_price: result.columns[1].f64s()[i],
            sum_disc_price: result.columns[2].f64s()[i],
            sum_charge: result.columns[3].f64s()[i],
            avg_qty: result.columns[4].f64s()[i],
            avg_price: result.columns[5].f64s()[i],
            avg_disc: result.columns[6].f64s()[i],
            count: result.columns[7].u64s()[i],
        });
    }
    let mut timing = result.timing;
    timing.other += t0.elapsed();
    Ok((rows, timing))
}

/// The original materializing pipeline: n-sized selection vector, gather
/// and expression evaluation into full-length vectors, then grouped
/// aggregation. Kept as the differential-testing reference and as the
/// only pipeline able to sort for [`SumBackend::SortedDouble`].
pub fn run_q1_materializing(
    lineitem: &Lineitem,
    backend: SumBackend,
) -> Result<(Vec<Q1Row>, PhaseTiming), OverflowError> {
    let mut timing = PhaseTiming::default();
    let t0 = Instant::now();

    // --- scan: selection vector (l_shipdate <= cutoff) -------------------
    let sel: Vec<u32> = lineitem
        .shipdate
        .iter()
        .enumerate()
        .filter(|(_, &d)| d <= Q1_SHIPDATE_CUTOFF)
        .map(|(i, _)| i as u32)
        .collect();

    // --- scan: gather + expression evaluation ----------------------------
    let n = sel.len();
    let mut group_ids = Vec::with_capacity(n);
    let mut qty = Vec::with_capacity(n);
    let mut price = Vec::with_capacity(n);
    let mut disc = Vec::with_capacity(n);
    let mut disc_price = Vec::with_capacity(n);
    let mut charge = Vec::with_capacity(n);
    for &i in &sel {
        let i = i as usize;
        let p = lineitem.extendedprice[i];
        let d = lineitem.discount[i];
        let t = lineitem.tax[i];
        let dp = p * (1.0 - d);
        group_ids.push(lineitem.q1_group(i));
        qty.push(lineitem.quantity[i]);
        price.push(p);
        disc.push(d);
        disc_price.push(dp);
        charge.push(dp * (1.0 + t));
    }
    timing.scan += t0.elapsed();

    // --- other (SortedDouble only): sort into a total deterministic order.
    if backend == SumBackend::SortedDouble {
        let t1 = Instant::now();
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Total order: group, then the bit patterns of every aggregated
        // column (ties are then bit-identical rows, so unstable sorting
        // cannot introduce non-determinism).
        order.sort_unstable_by_key(|&i| {
            let i = i as usize;
            (
                group_ids[i],
                qty[i].to_bits(),
                price[i].to_bits(),
                disc_price[i].to_bits(),
                charge[i].to_bits(),
                disc[i].to_bits(),
            )
        });
        let apply = |v: &mut Vec<f64>| {
            let out: Vec<f64> = order.iter().map(|&i| v[i as usize]).collect();
            *v = out;
        };
        let gids: Vec<u32> = order.iter().map(|&i| group_ids[i as usize]).collect();
        group_ids = gids;
        apply(&mut qty);
        apply(&mut price);
        apply(&mut disc);
        apply(&mut disc_price);
        apply(&mut charge);
        timing.other += t1.elapsed();
    }

    // --- aggregation: five grouped SUMs + COUNT --------------------------
    let t1 = Instant::now();
    let sum_qty = sum_grouped(backend, &group_ids, &qty, GROUPS)?;
    let sum_price = sum_grouped(backend, &group_ids, &price, GROUPS)?;
    let sum_disc_price = sum_grouped(backend, &group_ids, &disc_price, GROUPS)?;
    let sum_charge = sum_grouped(backend, &group_ids, &charge, GROUPS)?;
    let sum_disc = sum_grouped(backend, &group_ids, &disc, GROUPS)?;
    let counts = count_grouped(&group_ids, GROUPS);
    timing.aggregation += t1.elapsed();

    // --- other: finalization (averages, output order) --------------------
    let t2 = Instant::now();
    let rows = build_q1_rows(
        &sum_qty,
        &sum_price,
        &sum_disc_price,
        &sum_charge,
        &sum_disc,
        &counts,
    );
    timing.other += t2.elapsed();
    Ok((rows, timing))
}

/// One morsel's worth of selected-and-projected Q1 columns.
#[derive(Default)]
struct Q1ScanCols {
    group_ids: Vec<u32>,
    qty: Vec<f64>,
    price: Vec<f64>,
    disc: Vec<f64>,
    disc_price: Vec<f64>,
    charge: Vec<f64>,
}

impl Q1ScanCols {
    fn append(&mut self, other: &mut Q1ScanCols) {
        self.group_ids.append(&mut other.group_ids);
        self.qty.append(&mut other.qty);
        self.price.append(&mut other.price);
        self.disc.append(&mut other.disc);
        self.disc_price.append(&mut other.disc_price);
        self.charge.append(&mut other.charge);
    }
}

/// Morsel-parallel materializing pipeline: the scan materializes
/// per-morsel column fragments concatenated in morsel order (the serial
/// row order), then aggregates with [`sum_grouped_par`]. This is what
/// [`SumBackend::SortedDouble`] runs under [`run_q1_par`] — its parallel
/// merge sort lands in the same total order as the serial sort, keeping
/// it bit-identical to [`run_q1_materializing`].
pub fn run_q1_materializing_par(
    lineitem: &Lineitem,
    backend: SumBackend,
) -> Result<(Vec<Q1Row>, PhaseTiming), OverflowError> {
    let mut timing = PhaseTiming::default();
    let t0 = Instant::now();

    // --- scan: morsel-parallel selection + gather + expression eval ------
    let n = lineitem.len();
    let mut cols = (0..n.div_ceil(SCAN_MORSEL_ROWS))
        .into_par_iter()
        .with_min_len(1)
        .fold(Q1ScanCols::default, |mut acc, m| {
            let lo = m * SCAN_MORSEL_ROWS;
            let hi = (lo + SCAN_MORSEL_ROWS).min(n);
            for i in lo..hi {
                if lineitem.shipdate[i] > Q1_SHIPDATE_CUTOFF {
                    continue;
                }
                let p = lineitem.extendedprice[i];
                let d = lineitem.discount[i];
                let t = lineitem.tax[i];
                let dp = p * (1.0 - d);
                acc.group_ids.push(lineitem.q1_group(i));
                acc.qty.push(lineitem.quantity[i]);
                acc.price.push(p);
                acc.disc.push(d);
                acc.disc_price.push(dp);
                acc.charge.push(dp * (1.0 + t));
            }
            acc
        })
        .reduce(Q1ScanCols::default, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    timing.scan += t0.elapsed();

    // --- other (SortedDouble only): parallel sort into the same total
    // deterministic order the serial path uses.
    if backend == SumBackend::SortedDouble {
        let t1 = Instant::now();
        let rows = cols.group_ids.len();
        let mut order: Vec<u32> = (0..rows as u32).collect();
        order.par_sort_unstable_by_key(|&i| {
            let i = i as usize;
            (
                cols.group_ids[i],
                cols.qty[i].to_bits(),
                cols.price[i].to_bits(),
                cols.disc_price[i].to_bits(),
                cols.charge[i].to_bits(),
                cols.disc[i].to_bits(),
            )
        });
        let apply = |v: &mut Vec<f64>| {
            let out: Vec<f64> = order.iter().map(|&i| v[i as usize]).collect();
            *v = out;
        };
        cols.group_ids = order.iter().map(|&i| cols.group_ids[i as usize]).collect();
        apply(&mut cols.qty);
        apply(&mut cols.price);
        apply(&mut cols.disc);
        apply(&mut cols.disc_price);
        apply(&mut cols.charge);
        timing.other += t1.elapsed();
    }

    // --- aggregation: five morsel-parallel grouped SUMs + COUNT ----------
    let t1 = Instant::now();
    let g = &cols.group_ids;
    let sum_qty = sum_grouped_par(backend, g, &cols.qty, GROUPS)?;
    let sum_price = sum_grouped_par(backend, g, &cols.price, GROUPS)?;
    let sum_disc_price = sum_grouped_par(backend, g, &cols.disc_price, GROUPS)?;
    let sum_charge = sum_grouped_par(backend, g, &cols.charge, GROUPS)?;
    let sum_disc = sum_grouped_par(backend, g, &cols.disc, GROUPS)?;
    let counts = count_grouped(g, GROUPS);
    timing.aggregation += t1.elapsed();

    // --- other: finalization ---------------------------------------------
    let t2 = Instant::now();
    let rows = build_q1_rows(
        &sum_qty,
        &sum_price,
        &sum_disc_price,
        &sum_charge,
        &sum_disc,
        &counts,
    );
    timing.other += t2.elapsed();
    Ok((rows, timing))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Lineitem {
        Lineitem::generate(120_000, 7)
    }

    fn assert_rows_bit_identical(a: &[Q1Row], b: &[Q1Row], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.returnflag, y.returnflag, "{ctx}");
            assert_eq!(x.linestatus, y.linestatus, "{ctx}");
            assert_eq!(x.count, y.count, "{ctx}");
            assert_eq!(x.sum_qty.to_bits(), y.sum_qty.to_bits(), "{ctx}");
            assert_eq!(
                x.sum_base_price.to_bits(),
                y.sum_base_price.to_bits(),
                "{ctx}"
            );
            assert_eq!(
                x.sum_disc_price.to_bits(),
                y.sum_disc_price.to_bits(),
                "{ctx}"
            );
            assert_eq!(x.sum_charge.to_bits(), y.sum_charge.to_bits(), "{ctx}");
            assert_eq!(x.avg_disc.to_bits(), y.avg_disc.to_bits(), "{ctx}");
        }
    }

    #[test]
    fn q1_produces_the_four_tpch_groups() {
        let (rows, _) = run_q1(&table(), SumBackend::Double).unwrap();
        let groups: Vec<(char, char)> = rows.iter().map(|r| (r.returnflag, r.linestatus)).collect();
        assert_eq!(groups, vec![('A', 'F'), ('N', 'F'), ('N', 'O'), ('R', 'F')]);
    }

    #[test]
    fn backends_agree_numerically() {
        let t = table();
        let (d, _) = run_q1(&t, SumBackend::Double).unwrap();
        let (u, _) = run_q1(&t, SumBackend::ReproUnbuffered).unwrap();
        let (b, _) = run_q1(&t, SumBackend::ReproBuffered { buffer_size: 1024 }).unwrap();
        let (s, _) = run_q1(&t, SumBackend::SortedDouble).unwrap();
        for (((rd, ru), rb), rs) in d.iter().zip(&u).zip(&b).zip(&s) {
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(1.0);
            assert!(close(rd.sum_charge, ru.sum_charge));
            assert!(close(rd.sum_charge, rs.sum_charge));
            // Both repro variants are bit-identical to each other.
            assert_eq!(ru.sum_qty.to_bits(), rb.sum_qty.to_bits());
            assert_eq!(ru.sum_charge.to_bits(), rb.sum_charge.to_bits());
            assert_eq!(rd.count, ru.count);
        }
    }

    #[test]
    fn fused_is_bit_identical_to_materializing_for_every_backend() {
        let t = table();
        for backend in [
            SumBackend::Double,
            SumBackend::ReproUnbuffered,
            SumBackend::ReproBuffered { buffer_size: 512 },
            SumBackend::Rsum { levels: 3 },
            SumBackend::RsumBuffered {
                levels: 2,
                buffer_size: 256,
            },
        ] {
            let (reference, _) = run_q1_materializing(&t, backend).unwrap();
            let (fused, _) = run_q1(&t, backend).unwrap();
            assert_rows_bit_identical(&reference, &fused, &format!("{backend:?}"));
        }
    }

    #[test]
    fn repro_backend_survives_physical_reorder() {
        let t = table();
        let (u1, _) = run_q1(&t, SumBackend::ReproUnbuffered).unwrap();
        // Reorder the table physically (reverse) and re-run.
        let n = t.len();
        let perm: Vec<usize> = (0..n).rev().collect();
        let reordered = Lineitem::from_columns(
            perm.iter().map(|&i| t.quantity[i]).collect(),
            perm.iter().map(|&i| t.extendedprice[i]).collect(),
            perm.iter().map(|&i| t.discount[i]).collect(),
            perm.iter().map(|&i| t.tax[i]).collect(),
            perm.iter().map(|&i| t.shipdate[i]).collect(),
            perm.iter().map(|&i| t.returnflag[i]).collect(),
            perm.iter().map(|&i| t.linestatus[i]).collect(),
            perm.iter().map(|&i| t.suppkey[i]).collect(),
        );
        let (u2, _) = run_q1(&reordered, SumBackend::ReproUnbuffered).unwrap();
        for (a, b) in u1.iter().zip(u2.iter()) {
            assert_eq!(a.sum_qty.to_bits(), b.sum_qty.to_bits());
            assert_eq!(a.sum_base_price.to_bits(), b.sum_base_price.to_bits());
            assert_eq!(a.sum_disc_price.to_bits(), b.sum_disc_price.to_bits());
            assert_eq!(a.sum_charge.to_bits(), b.sum_charge.to_bits());
        }
        // The sorted baseline is also reproducible.
        let (s1, _) = run_q1(&t, SumBackend::SortedDouble).unwrap();
        let (s2, _) = run_q1(&reordered, SumBackend::SortedDouble).unwrap();
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert_eq!(a.sum_charge.to_bits(), b.sum_charge.to_bits());
        }
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_serial_for_every_backend() {
        // The fused executor keeps even plain doubles thread-count
        // independent (they scan serially); repro backends merge exactly;
        // SortedDouble re-sorts into the serial order.
        let t = table();
        for backend in [
            SumBackend::Double,
            SumBackend::ReproUnbuffered,
            SumBackend::ReproBuffered { buffer_size: 512 },
            SumBackend::Rsum { levels: 3 },
            SumBackend::RsumBuffered {
                levels: 3,
                buffer_size: 256,
            },
            SumBackend::SortedDouble,
        ] {
            let (serial, _) = run_q1(&t, backend).unwrap();
            let (parallel, _) = run_q1_par(&t, backend).unwrap();
            assert_rows_bit_identical(&serial, &parallel, &format!("{backend:?}"));
        }
    }

    /// Tentpole: Q1 over the compressed table layouts — dictionary
    /// everywhere, and RLE group keys after clustering by the group pair
    /// — is bit-identical to the plain layout for every backend and
    /// thread count, and the encodings genuinely engage (the group
    /// columns are stored encoded, not silently decoded).
    #[test]
    fn q1_over_encoded_tables_is_bit_identical_to_plain() {
        use crate::column::Column;
        let t = table();
        let plain = lineitem_table(&t);
        let dict = lineitem_table_encoded(&t);
        let sorted = t.sorted_by_q1_group();
        let rle = lineitem_table_encoded(&sorted);

        // The unsorted twin dictionary-encodes the flags; the clustered
        // twin stores them as a handful of runs.
        assert!(matches!(
            dict.column("l_returnflag").unwrap(),
            Column::Dict { .. }
        ));
        assert!(matches!(
            rle.column("l_returnflag").unwrap(),
            Column::Rle { .. }
        ));
        assert!(matches!(
            rle.column("l_linestatus").unwrap(),
            Column::Rle { .. }
        ));
        assert!(matches!(
            dict.column("l_quantity").unwrap(),
            Column::Dict { .. }
        ));
        // The auto-encoder widens to u16 codes where 256 entries don't
        // fit (the 10 000-supplier key) and leaves near-unique columns
        // plain (a dictionary over l_extendedprice would outgrow it).
        assert_eq!(
            dict.column("l_suppkey").unwrap().storage_name(),
            "Dict16<I32>"
        );
        assert_eq!(
            dict.column("l_extendedprice").unwrap().storage_name(),
            "F64"
        );

        fn assert_bitwise(a: &crate::plan::PlanResult, b: &crate::plan::PlanResult, ctx: &str) {
            use crate::plan::AggColumn;
            assert_eq!(a.keys, b.keys, "{ctx}");
            for (c, cols) in a.columns.iter().zip(&b.columns).enumerate() {
                match cols {
                    (AggColumn::F64(x), AggColumn::F64(y)) => {
                        for (u, v) in x.iter().zip(y) {
                            assert_eq!(u.to_bits(), v.to_bits(), "{ctx} column {c}");
                        }
                    }
                    (AggColumn::U64(x), AggColumn::U64(y)) => assert_eq!(x, y, "{ctx} column {c}"),
                    _ => panic!("{ctx} column {c}: kind mismatch"),
                }
            }
        }
        let plan = q1_plan();
        let sorted_plain = lineitem_table(&sorted);
        for backend in [
            SumBackend::Double,
            SumBackend::ReproUnbuffered,
            SumBackend::Rsum { levels: 2 },
        ] {
            for threads in [1usize, 4] {
                let opts = ExecOptions {
                    threads,
                    ..ExecOptions::default()
                };
                let want = plan.execute(&plain, backend, &opts).unwrap();
                let got = plan.execute(&dict, backend, &opts).unwrap();
                assert_bitwise(&want, &got, &format!("{backend:?} t{threads} dict"));
                // The clustered RLE twin must match a plain table in the
                // same (sorted) physical order.
                let want = plan.execute(&sorted_plain, backend, &opts).unwrap();
                let got = plan.execute(&rle, backend, &opts).unwrap();
                assert_bitwise(&want, &got, &format!("{backend:?} t{threads} rle"));
            }
        }
    }

    #[test]
    fn averages_are_consistent() {
        let (rows, _) = run_q1(&table(), SumBackend::ReproUnbuffered).unwrap();
        for r in &rows {
            assert!((r.avg_qty - r.sum_qty / r.count as f64).abs() < 1e-12);
            assert!((1.0..=50.0).contains(&r.avg_qty));
            assert!((0.0..=0.10).contains(&r.avg_disc));
        }
    }
}
