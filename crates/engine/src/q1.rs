//! TPC-H Query 1 (paper §VI-E, Table IV).
//!
//! ```sql
//! SELECT l_returnflag, l_linestatus,
//!        sum(l_quantity), sum(l_extendedprice),
//!        sum(l_extendedprice * (1 - l_discount)),
//!        sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)),
//!        avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
//! FROM lineitem
//! WHERE l_shipdate <= date '1998-12-01' - interval '90' day
//! GROUP BY l_returnflag, l_linestatus
//! ORDER BY l_returnflag, l_linestatus;
//! ```
//!
//! The implementation is a vectorized columnar pipeline (selection vector →
//! expression evaluation → grouped aggregation → finalization), with CPU
//! time split into *aggregation* and *other* exactly as Table IV reports.
//! For [`SumBackend::SortedDouble`] the pipeline first sorts the selected
//! rows into a total deterministic order — the only way to make the plain
//! double sum reproducible, and the expensive baseline of Table IV.

use crate::sum_op::{
    count_grouped, sum_grouped, sum_grouped_par, OverflowError, SumBackend, SCAN_MORSEL_ROWS,
};
use rayon::prelude::*;
use rfa_workloads::tpch::{Lineitem, Q1_SHIPDATE_CUTOFF};
use std::time::{Duration, Instant};

/// CPU-time split of a query execution (Table IV's rows).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTiming {
    pub aggregation: Duration,
    pub other: Duration,
}

impl PhaseTiming {
    pub fn total(&self) -> Duration {
        self.aggregation + self.other
    }
}

/// One output row of Q1.
#[derive(Clone, Debug, PartialEq)]
pub struct Q1Row {
    pub returnflag: char,
    pub linestatus: char,
    pub sum_qty: f64,
    pub sum_base_price: f64,
    pub sum_disc_price: f64,
    pub sum_charge: f64,
    pub avg_qty: f64,
    pub avg_price: f64,
    pub avg_disc: f64,
    pub count: u64,
}

const GROUPS: usize = 6; // 3 returnflags × 2 linestatuses (dense encoding)

/// Executes Q1 over a lineitem table with the chosen SUM backend.
pub fn run_q1(
    lineitem: &Lineitem,
    backend: SumBackend,
) -> Result<(Vec<Q1Row>, PhaseTiming), OverflowError> {
    let mut timing = PhaseTiming::default();
    let t0 = Instant::now();

    // --- other: selection vector (l_shipdate <= cutoff) ------------------
    let sel: Vec<u32> = lineitem
        .shipdate
        .iter()
        .enumerate()
        .filter(|(_, &d)| d <= Q1_SHIPDATE_CUTOFF)
        .map(|(i, _)| i as u32)
        .collect();

    // --- other: gather + expression evaluation ---------------------------
    let n = sel.len();
    let mut group_ids = Vec::with_capacity(n);
    let mut qty = Vec::with_capacity(n);
    let mut price = Vec::with_capacity(n);
    let mut disc = Vec::with_capacity(n);
    let mut disc_price = Vec::with_capacity(n);
    let mut charge = Vec::with_capacity(n);
    for &i in &sel {
        let i = i as usize;
        let p = lineitem.extendedprice[i];
        let d = lineitem.discount[i];
        let t = lineitem.tax[i];
        let dp = p * (1.0 - d);
        group_ids.push(lineitem.q1_group(i));
        qty.push(lineitem.quantity[i]);
        price.push(p);
        disc.push(d);
        disc_price.push(dp);
        charge.push(dp * (1.0 + t));
    }

    // --- other (SortedDouble only): sort into a total deterministic order.
    if backend == SumBackend::SortedDouble {
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Total order: group, then the bit patterns of every aggregated
        // column (ties are then bit-identical rows, so unstable sorting
        // cannot introduce non-determinism).
        order.sort_unstable_by_key(|&i| {
            let i = i as usize;
            (
                group_ids[i],
                qty[i].to_bits(),
                price[i].to_bits(),
                disc_price[i].to_bits(),
                charge[i].to_bits(),
                disc[i].to_bits(),
            )
        });
        let apply = |v: &mut Vec<f64>| {
            let out: Vec<f64> = order.iter().map(|&i| v[i as usize]).collect();
            *v = out;
        };
        let gids: Vec<u32> = order.iter().map(|&i| group_ids[i as usize]).collect();
        group_ids = gids;
        apply(&mut qty);
        apply(&mut price);
        apply(&mut disc);
        apply(&mut disc_price);
        apply(&mut charge);
    }
    timing.other += t0.elapsed();

    // --- aggregation: five grouped SUMs + COUNT --------------------------
    let t1 = Instant::now();
    let sum_qty = sum_grouped(backend, &group_ids, &qty, GROUPS)?;
    let sum_price = sum_grouped(backend, &group_ids, &price, GROUPS)?;
    let sum_disc_price = sum_grouped(backend, &group_ids, &disc_price, GROUPS)?;
    let sum_charge = sum_grouped(backend, &group_ids, &charge, GROUPS)?;
    let sum_disc = sum_grouped(backend, &group_ids, &disc, GROUPS)?;
    let counts = count_grouped(&group_ids, GROUPS);
    timing.aggregation += t1.elapsed();

    // --- other: finalization (averages, output order) --------------------
    let t2 = Instant::now();
    let mut rows = Vec::new();
    for g in 0..GROUPS as u32 {
        if counts[g as usize] == 0 {
            continue; // (A, O) never occurs in TPC-H data
        }
        let c = counts[g as usize] as f64;
        let (rf, ls) = Lineitem::decode_group(g);
        rows.push(Q1Row {
            returnflag: rf,
            linestatus: ls,
            sum_qty: sum_qty[g as usize],
            sum_base_price: sum_price[g as usize],
            sum_disc_price: sum_disc_price[g as usize],
            sum_charge: sum_charge[g as usize],
            avg_qty: sum_qty[g as usize] / c,
            avg_price: sum_price[g as usize] / c,
            avg_disc: sum_disc[g as usize] / c,
            count: counts[g as usize],
        });
    }
    timing.other += t2.elapsed();
    Ok((rows, timing))
}

/// One morsel's worth of selected-and-projected Q1 columns.
#[derive(Default)]
struct Q1ScanCols {
    group_ids: Vec<u32>,
    qty: Vec<f64>,
    price: Vec<f64>,
    disc: Vec<f64>,
    disc_price: Vec<f64>,
    charge: Vec<f64>,
}

impl Q1ScanCols {
    fn append(&mut self, other: &mut Q1ScanCols) {
        self.group_ids.append(&mut other.group_ids);
        self.qty.append(&mut other.qty);
        self.price.append(&mut other.price);
        self.disc.append(&mut other.disc);
        self.disc_price.append(&mut other.disc_price);
        self.charge.append(&mut other.charge);
    }
}

/// Morsel-driven parallel Q1: the scan (selection + gather + expression
/// evaluation) runs as fixed-size morsels on the work-stealing pool, with
/// per-morsel column fragments concatenated in morsel order — the same
/// row order the serial scan produces. Aggregation uses
/// [`sum_grouped_par`], whose exact state merging makes the `repro`
/// backends **bit-identical to [`run_q1`]** for any thread count (asserted
/// in the test suite). [`SumBackend::SortedDouble`] sorts with the pool's
/// parallel merge sort into the same total order as the serial path, then
/// sums sequentially, so it is bit-identical too; plain
/// [`SumBackend::Double`] differs in merge order and therefore (generally)
/// in final bits — plain doubles are the paper's non-reproducible
/// baseline.
pub fn run_q1_par(
    lineitem: &Lineitem,
    backend: SumBackend,
) -> Result<(Vec<Q1Row>, PhaseTiming), OverflowError> {
    let mut timing = PhaseTiming::default();
    let t0 = Instant::now();

    // --- other: morsel-parallel selection + gather + expression eval -----
    let n = lineitem.len();
    let mut cols = (0..n.div_ceil(SCAN_MORSEL_ROWS))
        .into_par_iter()
        .with_min_len(1)
        .fold(Q1ScanCols::default, |mut acc, m| {
            let lo = m * SCAN_MORSEL_ROWS;
            let hi = (lo + SCAN_MORSEL_ROWS).min(n);
            for i in lo..hi {
                if lineitem.shipdate[i] > Q1_SHIPDATE_CUTOFF {
                    continue;
                }
                let p = lineitem.extendedprice[i];
                let d = lineitem.discount[i];
                let t = lineitem.tax[i];
                let dp = p * (1.0 - d);
                acc.group_ids.push(lineitem.q1_group(i));
                acc.qty.push(lineitem.quantity[i]);
                acc.price.push(p);
                acc.disc.push(d);
                acc.disc_price.push(dp);
                acc.charge.push(dp * (1.0 + t));
            }
            acc
        })
        .reduce(Q1ScanCols::default, |mut a, mut b| {
            a.append(&mut b);
            a
        });

    // --- other (SortedDouble only): parallel sort into the same total
    // deterministic order the serial path uses.
    if backend == SumBackend::SortedDouble {
        let rows = cols.group_ids.len();
        let mut order: Vec<u32> = (0..rows as u32).collect();
        order.par_sort_unstable_by_key(|&i| {
            let i = i as usize;
            (
                cols.group_ids[i],
                cols.qty[i].to_bits(),
                cols.price[i].to_bits(),
                cols.disc_price[i].to_bits(),
                cols.charge[i].to_bits(),
                cols.disc[i].to_bits(),
            )
        });
        let apply = |v: &mut Vec<f64>| {
            let out: Vec<f64> = order.iter().map(|&i| v[i as usize]).collect();
            *v = out;
        };
        cols.group_ids = order.iter().map(|&i| cols.group_ids[i as usize]).collect();
        apply(&mut cols.qty);
        apply(&mut cols.price);
        apply(&mut cols.disc);
        apply(&mut cols.disc_price);
        apply(&mut cols.charge);
    }
    timing.other += t0.elapsed();

    // --- aggregation: five morsel-parallel grouped SUMs + COUNT ----------
    let t1 = Instant::now();
    let g = &cols.group_ids;
    let sum_qty = sum_grouped_par(backend, g, &cols.qty, GROUPS)?;
    let sum_price = sum_grouped_par(backend, g, &cols.price, GROUPS)?;
    let sum_disc_price = sum_grouped_par(backend, g, &cols.disc_price, GROUPS)?;
    let sum_charge = sum_grouped_par(backend, g, &cols.charge, GROUPS)?;
    let sum_disc = sum_grouped_par(backend, g, &cols.disc, GROUPS)?;
    let counts = count_grouped(g, GROUPS);
    timing.aggregation += t1.elapsed();

    // --- other: finalization ---------------------------------------------
    let t2 = Instant::now();
    let mut rows = Vec::new();
    for group in 0..GROUPS as u32 {
        if counts[group as usize] == 0 {
            continue;
        }
        let c = counts[group as usize] as f64;
        let (rf, ls) = Lineitem::decode_group(group);
        rows.push(Q1Row {
            returnflag: rf,
            linestatus: ls,
            sum_qty: sum_qty[group as usize],
            sum_base_price: sum_price[group as usize],
            sum_disc_price: sum_disc_price[group as usize],
            sum_charge: sum_charge[group as usize],
            avg_qty: sum_qty[group as usize] / c,
            avg_price: sum_price[group as usize] / c,
            avg_disc: sum_disc[group as usize] / c,
            count: counts[group as usize],
        });
    }
    timing.other += t2.elapsed();
    Ok((rows, timing))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Lineitem {
        Lineitem::generate(120_000, 7)
    }

    #[test]
    fn q1_produces_the_four_tpch_groups() {
        let (rows, _) = run_q1(&table(), SumBackend::Double).unwrap();
        let groups: Vec<(char, char)> = rows.iter().map(|r| (r.returnflag, r.linestatus)).collect();
        assert_eq!(groups, vec![('A', 'F'), ('N', 'F'), ('N', 'O'), ('R', 'F')]);
    }

    #[test]
    fn backends_agree_numerically() {
        let t = table();
        let (d, _) = run_q1(&t, SumBackend::Double).unwrap();
        let (u, _) = run_q1(&t, SumBackend::ReproUnbuffered).unwrap();
        let (b, _) = run_q1(&t, SumBackend::ReproBuffered { buffer_size: 1024 }).unwrap();
        let (s, _) = run_q1(&t, SumBackend::SortedDouble).unwrap();
        for (((rd, ru), rb), rs) in d.iter().zip(&u).zip(&b).zip(&s) {
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(1.0);
            assert!(close(rd.sum_charge, ru.sum_charge));
            assert!(close(rd.sum_charge, rs.sum_charge));
            // Both repro variants are bit-identical to each other.
            assert_eq!(ru.sum_qty.to_bits(), rb.sum_qty.to_bits());
            assert_eq!(ru.sum_charge.to_bits(), rb.sum_charge.to_bits());
            assert_eq!(rd.count, ru.count);
        }
    }

    #[test]
    fn repro_backend_survives_physical_reorder() {
        let t = table();
        let (u1, _) = run_q1(&t, SumBackend::ReproUnbuffered).unwrap();
        // Reorder the table physically (reverse) and re-run.
        let n = t.len();
        let perm: Vec<usize> = (0..n).rev().collect();
        let reordered = Lineitem {
            quantity: perm.iter().map(|&i| t.quantity[i]).collect(),
            extendedprice: perm.iter().map(|&i| t.extendedprice[i]).collect(),
            discount: perm.iter().map(|&i| t.discount[i]).collect(),
            tax: perm.iter().map(|&i| t.tax[i]).collect(),
            shipdate: perm.iter().map(|&i| t.shipdate[i]).collect(),
            returnflag: perm.iter().map(|&i| t.returnflag[i]).collect(),
            linestatus: perm.iter().map(|&i| t.linestatus[i]).collect(),
        };
        let (u2, _) = run_q1(&reordered, SumBackend::ReproUnbuffered).unwrap();
        for (a, b) in u1.iter().zip(u2.iter()) {
            assert_eq!(a.sum_qty.to_bits(), b.sum_qty.to_bits());
            assert_eq!(a.sum_base_price.to_bits(), b.sum_base_price.to_bits());
            assert_eq!(a.sum_disc_price.to_bits(), b.sum_disc_price.to_bits());
            assert_eq!(a.sum_charge.to_bits(), b.sum_charge.to_bits());
        }
        // The sorted baseline is also reproducible.
        let (s1, _) = run_q1(&t, SumBackend::SortedDouble).unwrap();
        let (s2, _) = run_q1(&reordered, SumBackend::SortedDouble).unwrap();
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert_eq!(a.sum_charge.to_bits(), b.sum_charge.to_bits());
        }
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_serial_for_repro_backends() {
        let t = table();
        for backend in [
            SumBackend::ReproUnbuffered,
            SumBackend::ReproBuffered { buffer_size: 512 },
            SumBackend::Rsum { levels: 3 },
            SumBackend::RsumBuffered {
                levels: 3,
                buffer_size: 256,
            },
            SumBackend::SortedDouble,
        ] {
            let (serial, _) = run_q1(&t, backend).unwrap();
            let (parallel, _) = run_q1_par(&t, backend).unwrap();
            assert_eq!(serial.len(), parallel.len(), "{backend:?}");
            for (s, p) in serial.iter().zip(parallel.iter()) {
                assert_eq!(s.returnflag, p.returnflag);
                assert_eq!(s.count, p.count, "{backend:?}");
                assert_eq!(s.sum_qty.to_bits(), p.sum_qty.to_bits(), "{backend:?}");
                assert_eq!(
                    s.sum_base_price.to_bits(),
                    p.sum_base_price.to_bits(),
                    "{backend:?}"
                );
                assert_eq!(
                    s.sum_disc_price.to_bits(),
                    p.sum_disc_price.to_bits(),
                    "{backend:?}"
                );
                assert_eq!(
                    s.sum_charge.to_bits(),
                    p.sum_charge.to_bits(),
                    "{backend:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_scan_matches_serial_numerically_for_double() {
        // Plain doubles merge in a different order on the parallel path, so
        // only numerical (not bitwise) agreement is guaranteed.
        let t = table();
        let (serial, _) = run_q1(&t, SumBackend::Double).unwrap();
        let (parallel, _) = run_q1_par(&t, SumBackend::Double).unwrap();
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.count, p.count);
            assert!((s.sum_charge - p.sum_charge).abs() <= 1e-9 * s.sum_charge.abs());
        }
    }

    #[test]
    fn averages_are_consistent() {
        let (rows, _) = run_q1(&table(), SumBackend::ReproUnbuffered).unwrap();
        for r in &rows {
            assert!((r.avg_qty - r.sum_qty / r.count as f64).abs() < 1e-12);
            assert!((1.0..=50.0).contains(&r.avg_qty));
            assert!((0.0..=0.10).contains(&r.avg_disc));
        }
    }
}
