//! # rfa-engine — a columnar execution engine with reproducible SUM
//!
//! A small column-store executor standing in for MonetDB in the paper's
//! end-to-end experiment (§VI-E, Table IV) and for PostgreSQL in the
//! motivating example (Algorithm 1):
//!
//! * [`mod@column`] — typed columns and tables with explicit *physical* row
//!   order, including an MVCC-style UPDATE that reorders rows exactly like
//!   the paper's PostgreSQL example;
//! * [`sum_op`] — the grouped SUM operator with pluggable backends: plain
//!   overflow-checked doubles (MonetDB behaviour), `repro<double, 4>`
//!   with/without summation buffers, and the sorted-input baseline;
//! * [`q1`] — TPC-H Query 1 as a vectorized pipeline with the CPU-time
//!   split ("aggregation" vs "other") that Table IV reports, plus a
//!   morsel-driven parallel scan path ([`run_q1_par`], [`run_q6_par`])
//!   whose `repro`-backend results are bit-identical to the serial
//!   pipeline for any thread count.
//!
//! ```
//! use rfa_engine::{run_q1, SumBackend};
//! use rfa_workloads::Lineitem;
//!
//! let lineitem = Lineitem::generate(10_000, 42);
//! let (rows, timing) = run_q1(&lineitem, SumBackend::ReproBuffered { buffer_size: 1024 }).unwrap();
//! assert_eq!(rows.len(), 4); // A/F, N/F, N/O, R/F
//! assert!(timing.total().as_nanos() > 0);
//! ```

pub mod column;
pub mod expr;
pub mod q1;
pub mod q6;
pub mod sum_op;

pub use column::{Column, Table, TableError};
pub use expr::Expr;
pub use q1::{run_q1, run_q1_par, PhaseTiming, Q1Row};
pub use q6::{run_q6, run_q6_par};
pub use sum_op::{
    count_grouped, sum_grouped, sum_grouped_par, OverflowError, SumBackend, SCAN_MORSEL_ROWS,
};
