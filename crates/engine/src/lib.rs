//! # rfa-engine — a columnar execution engine with reproducible SUM
//!
//! A small column-store executor standing in for MonetDB in the paper's
//! end-to-end experiment (§VI-E, Table IV) and for PostgreSQL in the
//! motivating example (Algorithm 1):
//!
//! * [`mod@column`] — typed columns and tables with explicit *physical* row
//!   order, `Arc`-shared zero-copy storage, schema introspection
//!   ([`Table::schema`]) and owned column references ([`ColRef`]),
//!   including an MVCC-style UPDATE that reorders rows exactly like the
//!   paper's PostgreSQL example;
//! * [`expr`] — typed scalar *and* boolean expressions over numeric
//!   columns (`F64`/`I32`/`U32`/`U8`), compiled to batch-at-a-time
//!   register programs with constant folding (no per-node vectors);
//!   boolean predicates ([`BoolExpr`]) build branchless selection
//!   vectors, with typed fast paths for `col ⟨cmp⟩ const` shapes;
//! * [`sum_op`] — the grouped SUM operator with pluggable backends: plain
//!   overflow-checked doubles (MonetDB behaviour), `repro<double, 4>`
//!   with/without summation buffers, and the sorted-input baseline — all
//!   reified as the incremental, mergeable [`GroupedSums`] state, composed
//!   with exact COUNT and MIN/MAX arrays in [`GroupedStates`];
//! * [`fused`] — the fused zero-copy scan pipeline:
//!   filter → project → aggregate in cache-resident batches with no
//!   n-sized intermediates, serial or morsel-parallel, grouping on
//!   nothing, dense dictionary pairs, or arbitrary-cardinality hash keys
//!   ([`GroupKey`]);
//! * [`plan`] — the logical query-plan layer: [`QueryPlan`]s over
//!   SUM / COUNT / AVG / MIN / MAX ([`AggCall`]) validated against a
//!   table (`TableError`, no panics) and lowered onto the fused executor;
//! * [`sql`] — the SQL frontend: lexer → recursive-descent parser →
//!   AST → name-resolution/type-check against a table's schema →
//!   lowering onto [`QueryPlan`], with typed errors (never panics) and a
//!   canonical pretty-printer;
//! * [`q1`], [`q6`], [`q15`] — TPC-H Query 1, 6 and the Q15 revenue view
//!   expressed as plans *and* as pinned SQL texts
//!   ([`q1_sql`]/[`q6_sql`]/[`q15_sql`], proptested bit-identical to the
//!   builder plans), with the materializing reference pipeline kept for
//!   differential testing and the sorted-double baseline, reporting the
//!   CPU-time split (scan / aggregation / other) that Table IV builds
//!   on. Parallel execution is bit-identical to serial for every backend.
//!
//! ```
//! use rfa_engine::{run_q1, SumBackend};
//! use rfa_workloads::Lineitem;
//!
//! let lineitem = Lineitem::generate(10_000, 42);
//! let (rows, timing) = run_q1(&lineitem, SumBackend::ReproBuffered { buffer_size: 1024 }).unwrap();
//! assert_eq!(rows.len(), 4); // A/F, N/F, N/O, R/F
//! assert!(timing.total().as_nanos() > 0);
//! ```
//!
//! Ad-hoc queries go through SQL (or the equivalent plan builder):
//!
//! ```
//! use rfa_engine::{lineitem_table, sql_query, ExecOptions, SumBackend};
//! use rfa_workloads::Lineitem;
//!
//! let table = lineitem_table(&Lineitem::generate(10_000, 42));
//! let query = sql_query(
//!     "SELECT l_suppkey, SUM(l_quantity), AVG(l_discount), COUNT(*) \
//!      FROM lineitem WHERE l_quantity < 30 GROUP BY l_suppkey",
//!     &table,
//! ).unwrap();
//! let result = query
//!     .execute(&table, SumBackend::ReproUnbuffered, &ExecOptions::parallel())
//!     .unwrap();
//! assert_eq!(result.columns.len(), 4); // suppkey, SUM, AVG, COUNT
//! ```

pub mod column;
pub mod expr;
pub mod fused;
pub mod plan;
pub mod q1;
pub mod q15;
pub mod q6;
pub(crate) mod simd_sel;
pub mod sql;
pub mod sum_op;

pub use column::{ColRef, Column, EncodingError, Table, TableError};
pub use expr::{
    BoolExpr, BoundExpr, BoundPredicate, CmpOp, CompiledExpr, CompiledPredicate, EvalScratch, Expr,
};
pub use fused::{
    run_fused, ExecOptions, FusedError, FusedQuery, FusedRun, GroupKey, GroupSpec, FUSED_BATCH_ROWS,
};
pub use plan::{AggCall, AggColumn, PlanError, PlanResult, QueryPlan};
pub use q1::{
    lineitem_table, lineitem_table_encoded, q1_plan, q1_sql, run_q1, run_q1_materializing,
    run_q1_materializing_par, run_q1_par, run_q1_with, PhaseTiming, Q1Row,
};
pub use q15::{q15_plan, q15_sql, run_q15, run_q15_par, run_q15_with, RevenueRow};
pub use q6::{
    q6_plan, q6_sql, run_q6, run_q6_materializing, run_q6_materializing_par, run_q6_par,
    run_q6_with,
};
pub use sql::{
    parse_select, resolve_select, sql_query, PlanCache, PlanCacheStats, SelectItem, SelectStmt,
    SqlColumn, SqlError, SqlQuery, SqlResult,
};
pub use sum_op::{
    count_grouped, sum_grouped, sum_grouped_par, GroupedOutput, GroupedStates, GroupedSums,
    OverflowError, SumBackend, SCAN_MORSEL_ROWS,
};
