//! Figure 9 (compression) — TPC-H Q1 and Q6 over dictionary/RLE-encoded
//! columns vs plain arrays, without decompressing.
//!
//! The fused executor reads `Column::Dict`/`Column::Rle` storage
//! directly: predicates are evaluated once per dictionary *entry* (a
//! 256-way code-set bitmap tested per row) or once per *run* (selection
//! emitted as whole row ranges), and RLE group keys turn per-row
//! aggregate deposits into one block (`step_slice`) call per run. Both
//! arms perform the identical floating-point deposit sequence, so the
//! bench cross-asserts every output bit before recording the ratio into
//! `results/bench_smoke.json` (the `compression` object).
//!
//! Arms (all serial, `repro<double,4>` buffered — Table IV's backend):
//!
//! * Q1 / Q6 over the dbgen-ordered table, encoded by the production
//!   policy (`lineitem_table_encoded`): small-domain columns dictionary-
//!   encode, nothing is run-clustered, so this reads as pure dictionary
//!   overhead/win;
//! * Q1 over the (returnflag, linestatus)-sorted table — the group keys
//!   RLE-encode and grouped aggregation runs run-blocked;
//! * Q6 over the shipdate-sorted table — the ~2%-selective shipdate band
//!   predicate becomes a per-run range emit;
//! * **agg pushdown**: unfiltered `SUM`+`COUNT` where the *aggregate
//!   input itself* is encoded — the executor aggregates algebraically
//!   (one exact k·v deposit per RLE run; per-code counts flushed once
//!   per touched dictionary entry per batch) instead of per row:
//!   - `SUM(l_quantity)` over the quantity-sorted table (~50 long runs,
//!     `Rle<F64>`) — the headline run-algebraic arm,
//!   - `SUM(l_quantity)` in dbgen order (`Dict<F64>`, u8 codes),
//!   - `SUM(l_suppkey)` in dbgen order (`Dict16<I32>`, u16 codes,
//!     10 000 entries).

use rfa_bench::{
    f2, ns_per_elem, time_min, write_compression_smoke, BenchConfig, CompressionSmoke, ResultTable,
};
use rfa_core::CacheModel;
use rfa_engine::plan::QueryPlan;
use rfa_engine::{
    lineitem_table, lineitem_table_encoded, q1_plan, q6_plan, AggColumn, Column, ExecOptions, Expr,
    PlanResult, SumBackend, Table,
};
use rfa_workloads::Lineitem;

/// Both arms must produce the same group keys and the same output bits —
/// compression must be invisible to the result, not approximately so.
fn assert_bit_identical(plain: &PlanResult, encoded: &PlanResult, ctx: &str) {
    assert_eq!(plain.keys, encoded.keys, "{ctx}: group keys disagree");
    assert_eq!(plain.columns.len(), encoded.columns.len(), "{ctx}");
    for (c, cols) in plain.columns.iter().zip(&encoded.columns).enumerate() {
        match cols {
            (AggColumn::F64(a), AggColumn::F64(b)) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: column {c} bits differ");
                }
            }
            (AggColumn::U64(a), AggColumn::U64(b)) => {
                assert_eq!(a, b, "{ctx}: column {c} counts differ")
            }
            _ => panic!("{ctx}: column {c} kind mismatch"),
        }
    }
}

/// How a column is physically stored, e.g. "Rle<U8>" / "Dict<F64>" / "F64".
fn storage(table: &Table, name: &str) -> &'static str {
    table.column(name).expect("lineitem column").storage_name()
}

fn measure(
    plan: &QueryPlan,
    plain: &Table,
    encoded: &Table,
    backend: SumBackend,
    reps: usize,
    n: usize,
    ctx: &str,
) -> (f64, f64) {
    let opts = ExecOptions::serial();
    let want = plan.execute(plain, backend, &opts).expect(ctx);
    let got = plan.execute(encoded, backend, &opts).expect(ctx);
    assert_bit_identical(&want, &got, ctx);
    let plain_d = time_min(reps, || {
        std::hint::black_box(plan.execute(plain, backend, &opts).expect(ctx));
    });
    let encoded_d = time_min(reps, || {
        std::hint::black_box(plan.execute(encoded, backend, &opts).expect(ctx));
    });
    (ns_per_elem(plain_d, n), ns_per_elem(encoded_d, n))
}

fn main() {
    let cfg = BenchConfig::from_env();
    let n = cfg.n;
    let backend = SumBackend::ReproBuffered {
        buffer_size: CacheModel::default().buffer_size(6, 8, 0),
    };

    let lineitem = Lineitem::generate(n, 1);
    let by_group = lineitem.sorted_by_q1_group();
    let by_shipdate = lineitem.sorted_by_shipdate();
    let by_quantity = lineitem.sorted_by_quantity();

    // Agg-pushdown plans: no filter, no grouping — the scan cost is the
    // aggregate deposit loop itself, so the ratio isolates algebraic
    // (per-run / per-code) deposits against per-row ones.
    let sum_qty = QueryPlan::scan("lineitem")
        .sum(Expr::col("l_quantity"))
        .count();
    let sum_suppkey = QueryPlan::scan("lineitem")
        .sum(Expr::col("l_suppkey"))
        .count();

    // Plain and encoded twins share each physical row order, so the
    // ratio isolates storage, not data placement.
    let arms: [(&str, &QueryPlan, &Lineitem, &'static str); 7] = [
        ("q1 dbgen order", &q1_plan(), &lineitem, "l_returnflag"),
        ("q1 group-sorted", &q1_plan(), &by_group, "l_returnflag"),
        ("q6 dbgen order", &q6_plan(), &lineitem, "l_shipdate"),
        ("q6 shipdate-sorted", &q6_plan(), &by_shipdate, "l_shipdate"),
        ("sum(qty) dbgen order", &sum_qty, &lineitem, "l_quantity"),
        ("sum(qty) qty-sorted", &sum_qty, &by_quantity, "l_quantity"),
        (
            "sum(suppkey) dbgen order",
            &sum_suppkey,
            &lineitem,
            "l_suppkey",
        ),
    ];

    let mut table = ResultTable::new(
        format!("Figure 9 (compression): Q1/Q6 over Dict/Rle vs plain columns, serial, n = {n}"),
        &[
            "arm",
            "key storage",
            "plain ns/elem",
            "encoded ns/elem",
            "vs plain",
        ],
    );
    let mut measured: Vec<(f64, f64)> = Vec::new();
    for (name, plan, rows, key_col) in arms {
        let plain = lineitem_table(rows);
        let encoded = lineitem_table_encoded(rows);
        let (plain_ns, encoded_ns) = measure(plan, &plain, &encoded, backend, cfg.reps, n, name);
        table.row(vec![
            name.into(),
            storage(&encoded, key_col).into(),
            f2(plain_ns),
            f2(encoded_ns),
            format!("{:.2}x", encoded_ns / plain_ns),
        ]);
        measured.push((plain_ns, encoded_ns));
    }
    table.print();
    table.write_csv("fig9_compression");
    println!(
        "  paper shape: dictionary arms sit near 1x (pushdown trades a compare for a\n  \
         byte-indexed lookup); the clustered arms win outright — RLE group keys turn\n  \
         per-row deposits into one block call per run, and the RLE shipdate band\n  \
         emits selections a whole run at a time. The agg-pushdown arms go further:\n  \
         the RLE-sorted SUM deposits once per run (exact k*v split), the dict arms\n  \
         count per code and flush once per touched entry. Identical bits in every arm."
    );

    // The smoke record keeps the clustered arms — the encodings the
    // ISSUE targets: Q1's two u8 group columns (RLE after sorting, Dict
    // always), Q6's shipdate band, and the three agg-pushdown inputs.
    let by_group_encoded = lineitem_table_encoded(&by_group);
    assert!(
        matches!(
            by_group_encoded.column("l_returnflag").unwrap(),
            Column::Rle { .. }
        ),
        "group-sorted returnflag must RLE-encode"
    );
    let by_shipdate_encoded = lineitem_table_encoded(&by_shipdate);
    assert!(
        matches!(
            by_shipdate_encoded.column("l_shipdate").unwrap(),
            Column::Rle { .. }
        ),
        "shipdate-sorted shipdate must RLE-encode"
    );
    let dbgen_encoded = lineitem_table_encoded(&lineitem);
    assert!(
        matches!(
            dbgen_encoded.column("l_quantity").unwrap(),
            Column::Dict { .. }
        ),
        "dbgen-order quantity must Dict-encode (u8 codes)"
    );
    assert!(
        matches!(
            dbgen_encoded.column("l_suppkey").unwrap(),
            Column::Dict16 { .. }
        ),
        "dbgen-order suppkey must Dict16-encode (u16 codes)"
    );
    let by_quantity_encoded = lineitem_table_encoded(&by_quantity);
    assert!(
        matches!(
            by_quantity_encoded.column("l_quantity").unwrap(),
            Column::Rle { .. }
        ),
        "quantity-sorted quantity must RLE-encode"
    );
    write_compression_smoke(&CompressionSmoke {
        n,
        q1_encodings: "group-sorted: flags Rle, qty/discount/tax Dict",
        q1_plain_ns_per_elem: measured[1].0,
        q1_encoded_ns_per_elem: measured[1].1,
        q6_encodings: "shipdate-sorted: shipdate Rle, qty/discount/tax Dict",
        q6_plain_ns_per_elem: measured[3].0,
        q6_encoded_ns_per_elem: measured[3].1,
        agg_encodings: "sum inputs: qty Rle<F64> (sorted) / Dict<F64>, suppkey Dict16<I32>",
        agg_rle_plain_ns_per_elem: measured[5].0,
        agg_rle_encoded_ns_per_elem: measured[5].1,
        agg_dict_plain_ns_per_elem: measured[4].0,
        agg_dict_encoded_ns_per_elem: measured[4].1,
        agg_dict16_plain_ns_per_elem: measured[6].0,
        agg_dict16_encoded_ns_per_elem: measured[6].1,
    });
}
