//! Table II — maximum absolute error of conventional and reproducible
//! summation in double precision.
//!
//! Paper reports the *a-priori error bounds* (Eq. 5/6) for U[1,2) and
//! Exp(1) at n = 10^3 and 10^6: conventional ≈ 1.7e-10 / 1.1e-10 /
//! 1.7e-4 / 1.1e-4; RSUM L=1 ≈ 1e3…1.1e7 (uselessly loose), L=2
//! comparable to conventional, L=3 far tighter. We print those bounds
//! plus the *measured* errors against the exact Kulisch oracle —
//! demonstrating the paper's remark that the reproducible bounds are up
//! to 2^(W-1) more pessimistic than observed errors.

use rfa_bench::{sci, BenchConfig, ResultTable};
use rfa_core::analysis::{conventional_bound, reproducible_bound};
use rfa_core::reproducible_sum;
use rfa_exact::{abs_error_f64, exact_sum_f64};
use rfa_workloads::{values_only, ValueDist};

struct Config {
    n: usize,
    dist: ValueDist,
    label: &'static str,
}

fn measured_rsum_error<const L: usize>(values: &[f64]) -> f64 {
    let s = reproducible_sum::<f64, L>(values);
    abs_error_f64(values, s)
}

fn main() {
    let _ = BenchConfig::from_env(); // Table II sizes are fixed by the paper
    let configs = [
        Config {
            n: 1_000,
            dist: ValueDist::Uniform12,
            label: "n=10^3 U[1,2)",
        },
        Config {
            n: 1_000,
            dist: ValueDist::Exp1,
            label: "n=10^3 Exp(1)",
        },
        Config {
            n: 1_000_000,
            dist: ValueDist::Uniform12,
            label: "n=10^6 U[1,2)",
        },
        Config {
            n: 1_000_000,
            dist: ValueDist::Exp1,
            label: "n=10^6 Exp(1)",
        },
    ];

    let mut bounds = ResultTable::new(
        "Table II (bounds): max abs error bounds, double precision",
        &[
            "algorithm",
            configs[0].label,
            configs[1].label,
            configs[2].label,
            configs[3].label,
        ],
    );
    let mut measured = ResultTable::new(
        "Table II (measured): actual |error| vs exact oracle",
        &[
            "algorithm",
            configs[0].label,
            configs[1].label,
            configs[2].label,
            configs[3].label,
        ],
    );

    // Precompute per-config data and statistics.
    let data: Vec<Vec<f64>> = configs
        .iter()
        .enumerate()
        .map(|(i, c)| values_only(c.n, c.dist, 0xB0B5 + i as u64))
        .collect();
    let sum_abs: Vec<f64> = data
        .iter()
        .map(|d| d.iter().map(|v| v.abs()).sum())
        .collect();
    // The paper bounds Exp(1) by the 22 quantile argument; we use the
    // actual max, which is what the bound formula takes.
    let max_abs: Vec<f64> = data
        .iter()
        .map(|d| d.iter().fold(0.0f64, |m, &v| m.max(v.abs())))
        .collect();

    // Bounds rows.
    let mut conv_row = vec!["Conventional".to_string()];
    for (i, c) in configs.iter().enumerate() {
        conv_row.push(sci(conventional_bound::<f64>(c.n, sum_abs[i])));
    }
    bounds.row(conv_row);
    for l in 1..=3usize {
        let mut row = vec![format!("RSUM (L={l})")];
        for (i, c) in configs.iter().enumerate() {
            row.push(sci(reproducible_bound::<f64>(c.n, l, max_abs[i])));
        }
        bounds.row(row);
    }

    // Measured rows.
    let mut conv_row = vec!["Conventional".to_string()];
    for d in &data {
        let s: f64 = d.iter().sum();
        conv_row.push(sci(abs_error_f64(d, s)));
    }
    measured.row(conv_row);
    let mut rows: [Vec<String>; 3] = [
        vec!["RSUM (L=1)".to_string()],
        vec!["RSUM (L=2)".to_string()],
        vec!["RSUM (L=3)".to_string()],
    ];
    for d in &data {
        rows[0].push(sci(measured_rsum_error::<1>(d)));
        rows[1].push(sci(measured_rsum_error::<2>(d)));
        rows[2].push(sci(measured_rsum_error::<3>(d)));
    }
    for r in rows {
        measured.row(r);
    }
    // Exact-oracle sanity line: correctly rounded result has error <= 1/2 ulp.
    let mut exact_row = vec!["Exact (oracle)".to_string()];
    for d in &data {
        exact_row.push(sci(abs_error_f64(d, exact_sum_f64(d))));
    }
    measured.row(exact_row);

    bounds.print();
    bounds.write_csv("table2_bounds");
    measured.print();
    measured.write_csv("table2_measured");
    println!(
        "  paper shape: conventional bound ~1e-10 (n=10^3) / ~1e-4 (n=10^6);\n  \
         RSUM L=1 bound uselessly large, L=2 comparable to conventional, L=3 ~1e-21/1e-18;\n  \
         measured errors far below bounds (the paper notes up to 2^(W-1) slack)."
    );
}
