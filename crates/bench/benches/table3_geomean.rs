//! Table III — geometric mean (over all group counts) of the slowdown of
//! buffered `repro<ScalarT, L>` aggregation compared to built-in floats.
//!
//! Paper values: repro<float,1..4> → 1.88 / 2.11 / 2.16 / 2.35;
//! repro<double,1..4> → 2.12 / 2.18 / 2.29 / 2.41. The headline claim:
//! "the overhead of reproducibility … can be reduced to a slowdown of
//! about a factor of two."

use rfa_agg::{AggFn, BufferedReproAgg, SumAgg};
use rfa_bench::{geomean, runner::groupby_ns, BenchConfig, ResultTable};
use rfa_core::CacheModel;
use rfa_workloads::{GroupedPairs, ValueDist};

fn sweep<F>(
    make: impl Fn(usize) -> F,
    value_size: usize,
    cfg: &BenchConfig,
    f32_path: bool,
) -> Vec<f64>
where
    F: AggFn<Input = f32>,
    F::Output: Send,
{
    let _ = f32_path;
    let model = CacheModel::default();
    let mut out = Vec::new();
    for ge in (0..=cfg.max_group_exp()).step_by(4) {
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 12 + ge as u64);
        let v32 = w.values_f32();
        let depth = model.partition_depth(g, value_size);
        let bsz = model.buffer_size(g, value_size, depth);
        let t_base = groupby_ns(&SumAgg::<f32>::new(), &w.keys, &v32, depth, g, cfg.reps);
        let t = groupby_ns(&make(bsz), &w.keys, &v32, depth, g, cfg.reps);
        out.push(t / t_base);
    }
    out
}

fn sweep64<F>(make: impl Fn(usize) -> F, cfg: &BenchConfig) -> Vec<f64>
where
    F: AggFn<Input = f64>,
    F::Output: Send,
{
    let model = CacheModel::default();
    let mut out = Vec::new();
    for ge in (0..=cfg.max_group_exp()).step_by(4) {
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 12 + ge as u64);
        let v32 = w.values_f32();
        let depth = model.partition_depth(g, 8);
        let bsz = model.buffer_size(g, 8, depth);
        // The paper's baseline for all slowdowns is the float algorithm.
        let t_base = groupby_ns(
            &SumAgg::<f32>::new(),
            &w.keys,
            &v32,
            model.partition_depth(g, 4),
            g,
            cfg.reps,
        );
        let t = groupby_ns(&make(bsz), &w.keys, &w.values, depth, g, cfg.reps);
        out.push(t / t_base);
    }
    out
}

fn main() {
    let cfg = BenchConfig::from_env();
    let mut table = ResultTable::new(
        "Table III: geomean slowdown of buffered repro vs float (all group counts)",
        &["data type", "slowdown", "paper"],
    );
    macro_rules! rowf {
        ($l:literal, $paper:literal) => {
            let s = sweep(|bsz| BufferedReproAgg::<f32, $l>::new(bsz), 4, &cfg, true);
            table.row(vec![
                format!("repro<float,{}>", $l),
                format!("{:.2}", geomean(&s)),
                $paper.to_string(),
            ]);
        };
    }
    macro_rules! rowd {
        ($l:literal, $paper:literal) => {
            let s = sweep64(|bsz| BufferedReproAgg::<f64, $l>::new(bsz), &cfg);
            table.row(vec![
                format!("repro<double,{}>", $l),
                format!("{:.2}", geomean(&s)),
                $paper.to_string(),
            ]);
        };
    }
    rowf!(1, "1.88");
    rowf!(2, "2.11");
    rowf!(3, "2.16");
    rowf!(4, "2.35");
    rowd!(1, "2.12");
    rowd!(2, "2.18");
    rowd!(3, "2.29");
    rowd!(4, "2.41");
    table.print();
    table.write_csv("table3_geomean");
    println!("  paper shape: all eight types land near 2x, increasing mildly with L\n  and slightly higher for double than float.");
}
