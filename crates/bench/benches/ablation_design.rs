//! Ablations of the design choices DESIGN.md carries over from the paper:
//!
//! 1. **Identity vs. multiplicative hashing** (§VI-A: identity hashing is
//!    realistic for domain-encoded keys and makes the baseline as fast as
//!    the state of the art; a real hash slows *all* variants equally, so
//!    relative overheads are unaffected).
//! 2. **Partitioning fan-out 256** (§V-B: modern cores sustain radix
//!    fan-outs of ~256 per pass; smaller fan-outs need more passes,
//!    much larger ones thrash the TLB/store buffers).

use rfa_agg::{BufferedReproAgg, GroupByConfig, HashKind, ReproAgg, SumAgg};
use rfa_bench::{f2, ns_per_elem, time_min, BenchConfig, ResultTable};
use rfa_workloads::{GroupedPairs, ValueDist};

fn groupby_ns_cfg<F>(
    f: &F,
    keys: &[u32],
    values: &[F::Input],
    cfg: &GroupByConfig,
    reps: usize,
) -> f64
where
    F: rfa_agg::AggFn,
    F::Output: Send,
{
    let d = time_min(reps, || {
        std::hint::black_box(rfa_agg::partition_and_aggregate(f, keys, values, cfg));
    });
    ns_per_elem(d, keys.len())
}

fn ablate_hashing(cfg: &BenchConfig) {
    let mut table = ResultTable::new(
        "Ablation 1: identity vs multiplicative hashing (ns/elem, d = 1)",
        &[
            "log2(groups)",
            "float id",
            "float mult",
            "r<f,2> id",
            "r<f,2> mult",
            "repro overhead id",
            "repro overhead mult",
        ],
    );
    for ge in [6u32, 12, 16] {
        if ge > cfg.max_group_exp() {
            continue;
        }
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 31 + ge as u64);
        let v32 = w.values_f32();
        let mk = |hash| GroupByConfig {
            hash,
            depth: 1,
            groups_hint: g,
            threads: 1,
            ..Default::default()
        };
        let float_id = groupby_ns_cfg(
            &SumAgg::<f32>::new(),
            &w.keys,
            &v32,
            &mk(HashKind::Identity),
            cfg.reps,
        );
        let float_mu = groupby_ns_cfg(
            &SumAgg::<f32>::new(),
            &w.keys,
            &v32,
            &mk(HashKind::Multiplicative),
            cfg.reps,
        );
        let repro_id = groupby_ns_cfg(
            &ReproAgg::<f32, 2>::new(),
            &w.keys,
            &v32,
            &mk(HashKind::Identity),
            cfg.reps,
        );
        let repro_mu = groupby_ns_cfg(
            &ReproAgg::<f32, 2>::new(),
            &w.keys,
            &v32,
            &mk(HashKind::Multiplicative),
            cfg.reps,
        );
        table.row(vec![
            ge.to_string(),
            f2(float_id),
            f2(float_mu),
            f2(repro_id),
            f2(repro_mu),
            format!("{:.2}x", repro_id / float_id),
            format!("{:.2}x", repro_mu / float_mu),
        ]);
    }
    table.print();
    table.write_csv("ablation_hashing");
    println!(
        "  claim checked: a real hash function slows both baseline and repro by a\n  \
         similar constant, leaving the relative overhead of reproducibility intact."
    );
}

fn ablate_fanout(cfg: &BenchConfig) {
    let mut table = ResultTable::new(
        "Ablation 2: partitioning fan-out per pass (repro<f,2> buffered, ns/elem)",
        &[
            "log2(groups)",
            "F=16 (d=2)",
            "F=64 (d=2)",
            "F=256 (d=1)",
            "F=1024 (d=1)",
        ],
    );
    for ge in [12u32, 16, 18] {
        if ge > cfg.max_group_exp() {
            continue;
        }
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 37 + ge as u64);
        let v32 = w.values_f32();
        let f = BufferedReproAgg::<f32, 2>::new(64);
        let mut row = vec![ge.to_string()];
        for (bits, depth) in [(4u32, 2u32), (6, 2), (8, 1), (10, 1)] {
            let cfg2 = GroupByConfig {
                fanout_bits: bits,
                depth,
                groups_hint: g,
                threads: 1,
                ..Default::default()
            };
            row.push(f2(groupby_ns_cfg(&f, &w.keys, &v32, &cfg2, cfg.reps)));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("ablation_fanout");
    println!(
        "  claim checked: F = 256 in one pass beats smaller fan-outs needing two\n  \
         passes; pushing far beyond 256 stops helping."
    );
}

fn main() {
    let cfg = BenchConfig::from_env();
    ablate_hashing(&cfg);
    ablate_fanout(&cfg);
}
