//! Load generator for the query service (`rfa_server`): N concurrent
//! client sessions × mixed Q1/Q6/Q15 over the wire, with every
//! completed reply asserted **bit-identical** to an unfaulted serial
//! in-process run — across clients, thread counts and (on the chaos CI
//! leg, `RFA_FAULTS=...`) injected worker panics, stalls and deadline
//! expiries. Writes the `server` object of `results/bench_smoke.json`.
//!
//! The point is not raw throughput (the protocol is deliberately
//! simple): it is that concurrency and fault handling are *free of
//! result-bit consequences* — the paper's reproducibility claim
//! extended to a hardened service under load.

use rfa_bench::{BenchConfig, ResultTable, ServerSmoke};
use rfa_core::faults::{self, FaultSpec, INJECTED_PANIC};
use rfa_engine::{
    lineitem_table, q15_sql, q1_sql, q6_sql, ExecOptions, SqlColumn, SumBackend, Table,
};
use rfa_server::{Client, ClientError, ErrorCode, Server, ServerConfig};
use rfa_workloads::Lineitem;
use std::sync::Arc;
use std::time::Instant;

const BACKEND: SumBackend = SumBackend::ReproBuffered { buffer_size: 1024 };
const CLIENTS: usize = 8;
const THREAD_MIX: [u32; 3] = [1, 2, 8];

fn faults_label(spec: FaultSpec) -> &'static str {
    // Static labels keep the smoke struct Copy; the exact combination
    // matters less than "which chaos leg was this".
    if !spec.any() {
        "none"
    } else if spec == FaultSpec::ALL {
        "all"
    } else {
        "partial"
    }
}

fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s == INJECTED_PANIC)
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == INJECTED_PANIC);
        if !injected {
            previous(info);
        }
    }));
}

fn assert_bits_eq(got: &[SqlColumn], reference: &[SqlColumn], what: &str) {
    assert_eq!(got.len(), reference.len(), "{what}: column count");
    for (x, y) in got.iter().zip(reference) {
        match (x, y) {
            (SqlColumn::F64(p), SqlColumn::F64(q)) => {
                assert_eq!(p.len(), q.len(), "{what}: rows");
                for (u, v) in p.iter().zip(q) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{what}: result bits diverged");
                }
            }
            _ => assert_eq!(x, y, "{what}: result bits diverged"),
        }
    }
}

/// Runs `per` queries on one session, round-robin over the query mix and
/// thread counts. Returns how many completed; every completed reply is
/// bit-checked against the references, every failure must be a typed
/// chaos code.
fn run_session(
    addr: std::net::SocketAddr,
    queries: &[String; 3],
    references: &[Vec<SqlColumn>; 3],
    per: usize,
    spec: FaultSpec,
) -> u64 {
    let mut client = Client::connect(addr).expect("connect");
    let mut completed = 0;
    for i in 0..per {
        let q = i % 3;
        let threads = THREAD_MIX[i % THREAD_MIX.len()];
        match client.query(&queries[q], BACKEND, threads, None) {
            Ok(result) => {
                assert_bits_eq(
                    &result.columns,
                    &references[q],
                    &queries[q][..32.min(queries[q].len())],
                );
                completed += 1;
            }
            Err(ClientError::Service(e)) => {
                let tolerated = matches!(e.code, ErrorCode::Overloaded)
                    || (spec.panic && e.code == ErrorCode::Internal)
                    || (spec.deadline && e.code == ErrorCode::DeadlineExceeded);
                assert!(tolerated, "untolerated service error: {e}");
            }
            Err(other) => panic!("transport failed under load: {other}"),
        }
    }
    completed
}

fn run_arm(
    addr: std::net::SocketAddr,
    clients: usize,
    queries: &Arc<[String; 3]>,
    references: &Arc<[Vec<SqlColumn>; 3]>,
    per: usize,
    spec: FaultSpec,
) -> (f64, u64) {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let queries = Arc::clone(queries);
            let references = Arc::clone(references);
            std::thread::spawn(move || run_session(addr, &queries, &references, per, spec))
        })
        .collect();
    let completed: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("client session panicked"))
        .sum();
    let secs = start.elapsed().as_secs_f64();
    (completed as f64 / secs.max(1e-9), completed)
}

fn main() {
    let cfg = BenchConfig::from_env();
    let spec = faults::active();
    if spec.any() {
        quiet_injected_panics();
    }
    let per = if cfg.n <= 1 << 16 { 9 } else { 18 };

    println!(
        "server_load: n={}, {CLIENTS} clients x {per} queries, faults={}",
        cfg.n,
        faults_label(spec)
    );

    let table: Arc<Table> = Arc::new(lineitem_table(&Lineitem::generate(cfg.n, 42)));
    let queries: Arc<[String; 3]> = Arc::new([q1_sql(), q6_sql(), q15_sql()]);

    // Unfaulted serial in-process references — the bits every completed
    // reply must carry, whatever the concurrency or chaos.
    let references: Arc<[Vec<SqlColumn>; 3]> = {
        let was = spec
            .any()
            .then(|| faults::set_override(Some(FaultSpec::NONE)));
        let refs = Arc::new(std::array::from_fn(|q| {
            rfa_engine::sql_query(&queries[q], &table)
                .expect("reference query")
                .execute(&table, BACKEND, &ExecOptions::serial())
                .expect("reference execution")
                .columns
        }));
        if was.is_some() {
            faults::set_override(None); // back to the env-driven menu
        }
        refs
    };

    let server = Server::spawn(
        Arc::clone(&table),
        ServerConfig {
            workers: 8,
            queue_depth: 64,
        },
    )
    .expect("spawn server");
    let addr = server.addr();

    let (qps_1, done_1) = run_arm(addr, 1, &queries, &references, per, spec);
    let (qps_n, done_n) = run_arm(addr, CLIENTS, &queries, &references, per, spec);

    let stats = server.stats();
    let mut t = ResultTable::new(
        format!(
            "query service under load (n = {}, backend = repro<d,4> buffered)",
            cfg.n
        ),
        &["clients", "queries", "completed", "qps"],
    );
    t.row(vec![
        "1".into(),
        per.to_string(),
        done_1.to_string(),
        format!("{qps_1:.1}"),
    ]);
    t.row(vec![
        CLIENTS.to_string(),
        (CLIENTS * per).to_string(),
        done_n.to_string(),
        format!("{qps_n:.1}"),
    ]);
    t.print();
    println!(
        "  stats: accepted={} completed={} overloaded={} cancelled={} deadline={} panics={} protocol_errors={}",
        stats.accepted,
        stats.completed,
        stats.rejected_overload,
        stats.cancelled,
        stats.deadline_expired,
        stats.panics_isolated,
        stats.protocol_errors,
    );
    assert!(done_1 + done_n > 0, "no query survived the load run");

    rfa_bench::write_server_smoke(&ServerSmoke {
        n: cfg.n,
        clients: CLIENTS,
        queries_per_client: per,
        qps_1_client: qps_1,
        qps_loaded: qps_n,
        faults: faults_label(spec),
        completed: stats.completed,
        rejected_overload: stats.rejected_overload,
        deadline_expired: stats.deadline_expired,
        panics_isolated: stats.panics_isolated,
    });
}
