//! Figure 9 — HASHAGGREGATION variants with different amounts of
//! partitioning (d = 0, 1, 2) on `repro<float, 2>` with summation buffers.
//!
//! Paper shape: each extra partitioning level costs a constant; it pays
//! off once the group count makes the unpartitioned working set fall out
//! of cache — crossovers at ~2^10 groups (d0→d1) and ~2^18 (d1→d2),
//! i.e. 2^10 groups per partition either way.

//! A second panel measures the same operator serial vs on the
//! work-stealing pool (wall clock), and records one representative
//! serial/parallel pair into `results/bench_smoke.json` — the CI smoke
//! artifact for parallel speedup.

use rfa_agg::BufferedReproAgg;
use rfa_bench::{
    f2, ns_per_elem,
    runner::{groupby_ns, groupby_ns_threads},
    time_min, write_bench_smoke, BenchConfig, ResultTable, ScanSmoke,
};
use rfa_core::CacheModel;
use rfa_engine::{run_q1, run_q1_materializing, SumBackend};
use rfa_workloads::{GroupedPairs, Lineitem, ValueDist};

fn main() {
    let cfg = BenchConfig::from_env();
    let model = CacheModel::default();
    let max_exp = cfg.max_group_exp();

    let mut table = ResultTable::new(
        format!(
            "Figure 9: repro<float,2> buffered, ns/elem by partition depth, n = 2^{}",
            cfg.n.trailing_zeros()
        ),
        &[
            "log2(groups)",
            "d=0",
            "d=1",
            "d=2",
            "Eq4 bsz(d=0)",
            "model depth",
        ],
    );

    for ge in (0..=max_exp).step_by(2) {
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 10 + ge as u64);
        let v32 = w.values_f32();
        let mut row = vec![ge.to_string()];
        for d in 0..=2u32 {
            // Buffer size per Eq. 4 for this depth.
            let bsz = model.buffer_size(g, 4, d);
            let f = BufferedReproAgg::<f32, 2>::new(bsz);
            row.push(f2(groupby_ns(&f, &w.keys, &v32, d, g, cfg.reps)));
        }
        row.push(model.buffer_size(g, 4, 0).to_string());
        row.push(model.partition_depth(g, 4).to_string());
        table.row(row);
    }
    table.print();
    table.write_csv("fig9_partition_depth");
    println!(
        "  paper shape: d=0 fastest for few groups; d=1 wins beyond ~2^10 groups;\n  \
         d=2 wins beyond ~2^18 (same 2^10-per-partition threshold); the 'model depth'\n  \
         column shows the Eq. 4 cache model's offline choice."
    );

    // --- parallel panel: serial vs work-stealing pool, wall clock --------
    let pool = rayon::current_num_threads();
    let mut par_table = ResultTable::new(
        format!("Figure 9 (parallel): model-depth operator, serial vs pool ({pool} workers)"),
        &[
            "log2(groups)",
            "depth",
            "serial ns/elem",
            "pool ns/elem",
            "speedup",
        ],
    );
    let mut smoke: Option<(u32, f64, f64)> = None;
    for ge in [4u32, 10, max_exp] {
        let ge = ge.min(max_exp);
        if smoke.as_ref().is_some_and(|&(g, _, _)| g == ge) {
            continue; // deduplicate when max_exp is small
        }
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 30 + ge as u64);
        let v32 = w.values_f32();
        let depth = model.partition_depth(g, 4);
        let f = BufferedReproAgg::<f32, 2>::new(model.buffer_size(g, 4, depth));
        let serial = groupby_ns(&f, &w.keys, &v32, depth, g, cfg.reps);
        let parallel = groupby_ns_threads(&f, &w.keys, &v32, depth, g, cfg.reps, pool);
        par_table.row(vec![
            ge.to_string(),
            depth.to_string(),
            f2(serial),
            f2(parallel),
            format!("{:.2}x", serial / parallel),
        ]);
        // Smoke artifact: keep the largest sweep point (most work to
        // parallelize, the headline configuration).
        smoke = Some((ge, serial, parallel));
    }
    par_table.print();
    par_table.write_csv("fig9_parallel");

    // --- scan panel: fused zero-copy pipeline vs materializing -----------
    // TPC-H Q1 through the engine, serial, repro<d,4> buffered (the
    // paper's headline backend): the fused pipeline must be no slower
    // than the materializing one — it does the same arithmetic without
    // the n-sized selection/gather/projection vectors.
    let scan_rows = cfg.n;
    let lineitem = Lineitem::generate(scan_rows, 1);
    let backend = SumBackend::ReproBuffered {
        buffer_size: CacheModel::default().buffer_size(6, 8, 0),
    };
    let fused_d = time_min(cfg.reps, || {
        std::hint::black_box(run_q1(&lineitem, backend).expect("q1"));
    });
    let materializing_d = time_min(cfg.reps, || {
        std::hint::black_box(run_q1_materializing(&lineitem, backend).expect("q1"));
    });
    let fused = ns_per_elem(fused_d, scan_rows);
    let materializing = ns_per_elem(materializing_d, scan_rows);
    let mut scan_table = ResultTable::new(
        format!("Figure 9 (scan): TPC-H Q1 fused vs materializing, serial, n = {scan_rows}"),
        &["pipeline", "ns/elem", "vs materializing"],
    );
    scan_table.row(vec![
        "fused zero-copy".into(),
        f2(fused),
        format!("{:.2}x", fused / materializing),
    ]);
    scan_table.row(vec![
        "materializing".into(),
        f2(materializing),
        "1.00x".into(),
    ]);
    scan_table.print();
    scan_table.write_csv("fig9_scan");

    if let Some((ge, serial, parallel)) = smoke {
        write_bench_smoke(
            "fig9_partition_depth",
            &format!("repro<f32,2> buffered, groups=2^{ge}, model depth"),
            cfg.n,
            pool,
            serial,
            parallel,
            Some(ScanSmoke {
                query: "tpch_q1 serial repro<d,4> buffered",
                fused_ns_per_elem: fused,
                materializing_ns_per_elem: materializing,
            }),
        );
    }
    println!(
        "  parallel shape: wall-clock speedup approaches the worker count once the\n  \
         input spans enough morsels; on a single-core host both columns coincide\n  \
         (the split tree is identical — only the scheduling differs).\n  \
         scan shape: fused ns/elem at or below materializing — same arithmetic,\n  \
         no n-sized intermediates (bit-identical output, proptest-enforced)."
    );
}
