//! Figure 9 — HASHAGGREGATION variants with different amounts of
//! partitioning (d = 0, 1, 2) on `repro<float, 2>` with summation buffers.
//!
//! Paper shape: each extra partitioning level costs a constant; it pays
//! off once the group count makes the unpartitioned working set fall out
//! of cache — crossovers at ~2^10 groups (d0→d1) and ~2^18 (d1→d2),
//! i.e. 2^10 groups per partition either way.

//! A second panel measures the same operator serial vs on the
//! work-stealing pool (wall clock), and records one representative
//! serial/parallel pair into `results/bench_smoke.json` — the CI smoke
//! artifact for parallel speedup.

use rfa_agg::{BufferedReproAgg, HashKind};
use rfa_bench::{
    f2, ns_per_elem,
    runner::{groupby_ns, groupby_ns_threads},
    time_min, time_min_set, write_bench_smoke, BenchConfig, BenchSmoke, HashGroupSmoke,
    ResultTable, ScanSmoke, SimdSmoke, SqlSmoke,
};
use rfa_core::cpu::{self, SimdLevel};
use rfa_core::{CacheModel, ReproSum};
use rfa_engine::plan::QueryPlan;
use rfa_engine::{
    lineitem_table, q6_plan, q6_sql, run_q1, run_q1_materializing, run_q6, sql_query, Column,
    ExecOptions, Expr, PlanCache, SqlColumn, SumBackend, Table,
};
use rfa_workloads::{GroupedPairs, Lineitem, ValueDist};

fn main() {
    let cfg = BenchConfig::from_env();
    let model = CacheModel::default();
    let max_exp = cfg.max_group_exp();

    let mut table = ResultTable::new(
        format!(
            "Figure 9: repro<float,2> buffered, ns/elem by partition depth, n = 2^{}",
            cfg.n.trailing_zeros()
        ),
        &[
            "log2(groups)",
            "d=0",
            "d=1",
            "d=2",
            "Eq4 bsz(d=0)",
            "model depth",
        ],
    );

    for ge in (0..=max_exp).step_by(2) {
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 10 + ge as u64);
        let v32 = w.values_f32();
        let mut row = vec![ge.to_string()];
        for d in 0..=2u32 {
            // Buffer size per Eq. 4 for this depth.
            let bsz = model.buffer_size(g, 4, d);
            let f = BufferedReproAgg::<f32, 2>::new(bsz);
            row.push(f2(groupby_ns(&f, &w.keys, &v32, d, g, cfg.reps)));
        }
        row.push(model.buffer_size(g, 4, 0).to_string());
        row.push(model.partition_depth(g, 4).to_string());
        table.row(row);
    }
    table.print();
    table.write_csv("fig9_partition_depth");
    println!(
        "  paper shape: d=0 fastest for few groups; d=1 wins beyond ~2^10 groups;\n  \
         d=2 wins beyond ~2^18 (same 2^10-per-partition threshold); the 'model depth'\n  \
         column shows the Eq. 4 cache model's offline choice."
    );

    // --- parallel panel: serial vs work-stealing pool, wall clock --------
    let pool = rayon::current_num_threads();
    let mut par_table = ResultTable::new(
        format!("Figure 9 (parallel): model-depth operator, serial vs pool ({pool} workers)"),
        &[
            "log2(groups)",
            "depth",
            "serial ns/elem",
            "pool ns/elem",
            "speedup",
        ],
    );
    let mut smoke: Option<(u32, f64, f64)> = None;
    for ge in [4u32, 10, max_exp] {
        let ge = ge.min(max_exp);
        if smoke.as_ref().is_some_and(|&(g, _, _)| g == ge) {
            continue; // deduplicate when max_exp is small
        }
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 30 + ge as u64);
        let v32 = w.values_f32();
        let depth = model.partition_depth(g, 4);
        let f = BufferedReproAgg::<f32, 2>::new(model.buffer_size(g, 4, depth));
        let serial = groupby_ns(&f, &w.keys, &v32, depth, g, cfg.reps);
        let parallel = groupby_ns_threads(&f, &w.keys, &v32, depth, g, cfg.reps, pool);
        par_table.row(vec![
            ge.to_string(),
            depth.to_string(),
            f2(serial),
            f2(parallel),
            format!("{:.2}x", serial / parallel),
        ]);
        // Smoke artifact: keep the largest sweep point (most work to
        // parallelize, the headline configuration).
        smoke = Some((ge, serial, parallel));
    }
    par_table.print();
    par_table.write_csv("fig9_parallel");

    // --- scan panel: fused zero-copy pipeline vs materializing -----------
    // TPC-H Q1 through the engine, serial, repro<d,4> buffered (the
    // paper's headline backend): the fused pipeline must be no slower
    // than the materializing one — it does the same arithmetic without
    // the n-sized selection/gather/projection vectors.
    let scan_rows = cfg.n;
    let lineitem = Lineitem::generate(scan_rows, 1);
    let backend = SumBackend::ReproBuffered {
        buffer_size: CacheModel::default().buffer_size(6, 8, 0),
    };
    let fused_d = time_min(cfg.reps, || {
        std::hint::black_box(run_q1(&lineitem, backend).expect("q1"));
    });
    let materializing_d = time_min(cfg.reps, || {
        std::hint::black_box(run_q1_materializing(&lineitem, backend).expect("q1"));
    });
    let fused = ns_per_elem(fused_d, scan_rows);
    let materializing = ns_per_elem(materializing_d, scan_rows);
    let mut scan_table = ResultTable::new(
        format!("Figure 9 (scan): TPC-H Q1 fused vs materializing, serial, n = {scan_rows}"),
        &["pipeline", "ns/elem", "vs materializing"],
    );
    scan_table.row(vec![
        "fused zero-copy".into(),
        f2(fused),
        format!("{:.2}x", fused / materializing),
    ]);
    scan_table.row(vec![
        "materializing".into(),
        f2(materializing),
        "1.00x".into(),
    ]);
    scan_table.print();
    scan_table.write_csv("fig9_scan");

    // --- hash-group panel: hash vs dense group-id assignment -------------
    // The identical plan-layer aggregation (one reproducible SUM over a
    // 2^14-key domain) grouped (a) densely via a dictionary-encoded U8
    // pair, (b) through the hash arm's SIMD batched probe on the raw i32
    // key column, and (c) through the same probe over a *sparse* strided
    // key domain with `HashKind::Multiplicative` — identity hashing would
    // pile the ×1000 stride onto every 8th home slot, so this arm is the
    // real-hash configuration of the paper's §VI-A remark. The dense gap
    // is pure group-id assignment cost.
    let ge = 14u32.min(max_exp);
    let domain = 1usize << ge;
    let w = GroupedPairs::generate(cfg.n, domain as u32, ValueDist::Uniform01, 70 + ge as u64);
    let mut grouped = Table::new("g");
    grouped
        .add_column(
            "key",
            Column::i32(w.keys.iter().map(|&k| k as i32).collect::<Vec<_>>()),
        )
        .unwrap();
    // Hash-hostile sparse keys: ×1000 = 8 · 125 strides, so under
    // identity hashing every key aliases into an eighth of the slots.
    grouped
        .add_column(
            "skey",
            Column::i32(w.keys.iter().map(|&k| k as i32 * 1000).collect::<Vec<_>>()),
        )
        .unwrap();
    grouped
        .add_column(
            "hi",
            Column::u8(w.keys.iter().map(|&k| (k >> 8) as u8).collect::<Vec<_>>()),
        )
        .unwrap();
    grouped
        .add_column(
            "lo",
            Column::u8(w.keys.iter().map(|&k| (k & 255) as u8).collect::<Vec<_>>()),
        )
        .unwrap();
    grouped
        .add_column("v", Column::f64(w.values.clone()))
        .unwrap();
    fn encode_hi_lo(hi: u8, lo: u8) -> u32 {
        ((hi as u32) << 8) | lo as u32
    }
    let group_backend = SumBackend::ReproBuffered {
        buffer_size: model.buffer_size(domain, 8, 0),
    };
    let dense_plan = QueryPlan::scan("g")
        .group_by_dense("hi", "lo", encode_hi_lo, domain)
        .sum(Expr::col("v"));
    let hash_plan = QueryPlan::scan("g").group_by_key("key").sum(Expr::col("v"));
    let sparse_plan = QueryPlan::scan("g")
        .group_by_key_with("skey", HashKind::Multiplicative)
        .sum(Expr::col("v"));
    let opts = ExecOptions::serial();
    // Cross-assert *before* measuring: every arm must agree with the
    // dense reference AND with its own forced-scalar-dispatch run,
    // bit-for-bit over every group — the smoke numbers are only written
    // for semantically interchangeable arms.
    {
        let d = dense_plan.execute(&grouped, group_backend, &opts).unwrap();
        for (name, plan) in [("hash", &hash_plan), ("sparse", &sparse_plan)] {
            let auto = plan.execute(&grouped, group_backend, &opts).unwrap();
            cpu::set_override(Some(SimdLevel::Scalar));
            let scalar = plan.execute(&grouped, group_backend, &opts).unwrap();
            cpu::set_override(None);
            assert_eq!(
                auto.keys, scalar.keys,
                "{name} arm: dispatched and scalar runs disagree on keys"
            );
            for (g, (a, b)) in auto.columns[0]
                .f64s()
                .iter()
                .zip(scalar.columns[0].f64s())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name} arm: dispatched and scalar runs disagree on group {g}"
                );
            }
            if name == "hash" {
                assert_eq!(
                    d.keys, auto.keys,
                    "hash and dense grouping disagree on keys"
                );
                for (g, (a, b)) in d.columns[0]
                    .f64s()
                    .iter()
                    .zip(auto.columns[0].f64s())
                    .enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "hash and dense grouping disagree on the sum of group {g}"
                    );
                }
            } else {
                // Same rows, strided keys: group g holds the identical
                // value sequence as dense group g (key = dense key ×1000),
                // so the sums must match the dense arm bit-for-bit too.
                assert_eq!(d.keys.len(), auto.keys.len());
                for (g, (&k, &dk)) in auto.keys.iter().zip(&d.keys).enumerate() {
                    assert_eq!(k, dk * 1000, "sparse arm key mismatch at group {g}");
                }
                for (g, (a, b)) in d.columns[0]
                    .f64s()
                    .iter()
                    .zip(auto.columns[0].f64s())
                    .enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "sparse and dense grouping disagree on the sum of group {g}"
                    );
                }
            }
        }
    }
    // The headline number is a ratio of arms, so the arms are measured
    // interleaved (see `time_min_set`): back-to-back minima would hand
    // each arm different machine noise.
    let [dense_d, hash_d, sparse_d] = time_min_set(
        cfg.reps.max(5),
        [
            &mut || {
                std::hint::black_box(dense_plan.execute(&grouped, group_backend, &opts).unwrap());
            },
            &mut || {
                std::hint::black_box(hash_plan.execute(&grouped, group_backend, &opts).unwrap());
            },
            &mut || {
                std::hint::black_box(sparse_plan.execute(&grouped, group_backend, &opts).unwrap());
            },
        ],
    );
    let dense_ns = ns_per_elem(dense_d, cfg.n);
    let hash_ns = ns_per_elem(hash_d, cfg.n);
    let sparse_ns = ns_per_elem(sparse_d, cfg.n);
    let mut hash_table = ResultTable::new(
        format!(
            "Figure 9 (hash group): plan-layer SUM by 2^{ge} keys, hash vs dense ids, n = {}",
            cfg.n
        ),
        &["group-id assignment", "ns/elem", "vs dense"],
    );
    hash_table.row(vec![
        "hash (simd probe_batch)".into(),
        f2(hash_ns),
        format!("{:.2}x", hash_ns / dense_ns),
    ]);
    hash_table.row(vec![
        "hash sparse ×1000 (multiplicative)".into(),
        f2(sparse_ns),
        format!("{:.2}x", sparse_ns / dense_ns),
    ]);
    hash_table.row(vec![
        "dense (dictionary)".into(),
        f2(dense_ns),
        "1.00x".into(),
    ]);
    hash_table.print();
    hash_table.write_csv("fig9_hash");

    // --- sql panel: Q6 SQL text, cold vs cached, vs the builder plan -----
    // The cold SQL arm re-parses, re-resolves and re-lowers the pinned Q6
    // text on every iteration — the whole frontend is in the measured loop.
    // The cached arm sends the same text through a warm `PlanCache`, so a
    // hit costs one lookup and the iteration collapses to plan execution.
    // The builder arm executes a prebuilt QueryPlan. All three run the
    // identical fused executor and are cross-asserted bit-identical, so
    // the gaps read directly as frontend / cache-lookup overhead.
    let engine_table = lineitem_table(&lineitem);
    let opts = ExecOptions::serial();
    let builder_q6 = q6_plan();
    let plan_cache = PlanCache::new();
    // The three arms are *ratios of each other*, and at smoke scale one
    // iteration is ~100 µs — short enough that measuring the arms
    // back-to-back hands each a different slice of machine noise and can
    // order them arbitrarily (the PR 9 artifact recorded the warm-cache
    // arm 59% above the builder it collapses to). Interleave the arms
    // round-robin so every rep samples the same noise windows, and take
    // extra reps: these loops are cheap.
    let sql_reps = cfg.reps.max(7);
    let measure_sql_panel = || {
        time_min_set(
            sql_reps,
            [
                &mut || {
                    let q = sql_query(&q6_sql(), &engine_table).expect("pinned Q6 SQL resolves");
                    std::hint::black_box(q.execute(&engine_table, backend, &opts).expect("q6 sql"));
                },
                &mut || {
                    let q = plan_cache
                        .get_or_resolve(&q6_sql(), &engine_table)
                        .expect("pinned Q6 SQL resolves");
                    std::hint::black_box(
                        q.execute(&engine_table, backend, &opts).expect("q6 cached"),
                    );
                },
                &mut || {
                    std::hint::black_box(
                        builder_q6
                            .execute(&engine_table, backend, &opts)
                            .expect("q6 plan"),
                    );
                },
            ],
        )
    };
    let mut sql_panel = measure_sql_panel();
    // Acceptance gate (PR 6): a warm cache hit is one lookup on top of
    // plan execution, ≤ 5% of the scan at any realistic size. One
    // re-measure before failing — a single preempted rep can still lose
    // the gate on a shared host — then the assert genuinely fires: a
    // regression here means the cache hit path grew real work.
    if sql_panel[1].as_secs_f64() > sql_panel[2].as_secs_f64() * 1.05 {
        sql_panel = measure_sql_panel();
    }
    let [sql_d, cached_d, builder_d] = sql_panel;
    let sql_ns = ns_per_elem(sql_d, scan_rows);
    let cached_ns = ns_per_elem(cached_d, scan_rows);
    let builder_ns = ns_per_elem(builder_d, scan_rows);
    assert!(
        cached_ns <= builder_ns * 1.05,
        "warm plan-cache arm regressed: {:.3} ns/elem vs builder {:.3} ns/elem \
         (cached_over_builder {:.3} > 1.05)",
        cached_ns,
        builder_ns,
        cached_ns / builder_ns
    );
    let cache_stats = plan_cache.stats();
    assert_eq!(cache_stats.entries, 1, "one pinned query, one cached plan");
    assert!(cache_stats.hits > 0, "warm iterations must hit the cache");
    {
        let q = sql_query(&q6_sql(), &engine_table).unwrap();
        let s = q.execute(&engine_table, backend, &opts).unwrap();
        let c = plan_cache
            .get_or_resolve(&q6_sql(), &engine_table)
            .unwrap()
            .execute(&engine_table, backend, &opts)
            .unwrap();
        let b = builder_q6.execute(&engine_table, backend, &opts).unwrap();
        let SqlColumn::F64(sv) = &s.columns[0] else {
            panic!("Q6 revenue is an F64 column");
        };
        let SqlColumn::F64(cv) = &c.columns[0] else {
            panic!("Q6 revenue is an F64 column");
        };
        assert_eq!(
            sv[0].to_bits(),
            b.columns[0].f64s()[0].to_bits(),
            "SQL and builder Q6 disagree"
        );
        assert_eq!(sv[0].to_bits(), cv[0].to_bits(), "cached Q6 disagrees");
    }
    let mut sql_table = ResultTable::new(
        format!("Figure 9 (sql): TPC-H Q6 from SQL text vs prebuilt plan, serial, n = {scan_rows}"),
        &["frontend", "ns/elem", "vs builder"],
    );
    sql_table.row(vec![
        "sql (parse+lower each run)".into(),
        f2(sql_ns),
        format!("{:.2}x", sql_ns / builder_ns),
    ]);
    sql_table.row(vec![
        "sql (warm plan cache)".into(),
        f2(cached_ns),
        format!("{:.2}x", cached_ns / builder_ns),
    ]);
    sql_table.row(vec!["builder plan".into(), f2(builder_ns), "1.00x".into()]);
    sql_table.print();
    sql_table.write_csv("fig9_sql");

    // --- simd panel: forced-scalar vs dispatched kernels -----------------
    // The summation kernel on its own (per-value extraction cascade vs
    // the portable lane-array block kernel vs the dispatched entry point,
    // AVX2 where supported) and TPC-H Q6 end-to-end (selection kernels +
    // summation) under a forced-scalar override vs the auto dispatch.
    // Every arm is bit-identical — that is proptest-enforced — so the
    // table is pure performance.
    let level = match cpu::active() {
        SimdLevel::Avx512 => "avx512",
        SimdLevel::Avx2 => "avx2",
        SimdLevel::Scalar => "scalar",
    };
    let simd_values: &[f64] = &lineitem.extendedprice;
    let cascade_d = time_min(cfg.reps, || {
        let mut acc = ReproSum::<f64, 4>::new();
        acc.add_all(std::hint::black_box(simd_values));
        std::hint::black_box(acc.finalize());
    });
    let portable_d = time_min(cfg.reps, || {
        let mut acc = ReproSum::<f64, 4>::new();
        rfa_core::simd::add_slice_portable(&mut acc, std::hint::black_box(simd_values));
        std::hint::black_box(acc.finalize());
    });
    let dispatched_d = time_min(cfg.reps, || {
        let mut acc = ReproSum::<f64, 4>::new();
        rfa_core::simd::add_slice(&mut acc, std::hint::black_box(simd_values));
        std::hint::black_box(acc.finalize());
    });
    cpu::set_override(Some(SimdLevel::Scalar));
    let q6_scalar_d = time_min(cfg.reps, || {
        std::hint::black_box(run_q6(&lineitem, backend).expect("q6"));
    });
    cpu::set_override(None);
    let q6_auto_d = time_min(cfg.reps, || {
        std::hint::black_box(run_q6(&lineitem, backend).expect("q6"));
    });
    let cascade_ns = ns_per_elem(cascade_d, scan_rows);
    let portable_ns = ns_per_elem(portable_d, scan_rows);
    let dispatched_ns = ns_per_elem(dispatched_d, scan_rows);
    let q6_scalar_ns = ns_per_elem(q6_scalar_d, scan_rows);
    let q6_auto_ns = ns_per_elem(q6_auto_d, scan_rows);
    let mut simd_table = ResultTable::new(
        format!("Figure 9 (simd): scalar vs dispatched ({level}) kernels, serial, n = {scan_rows}"),
        &["kernel", "ns/elem", "vs dispatched"],
    );
    simd_table.row(vec![
        "add_slice scalar cascade".into(),
        f2(cascade_ns),
        format!("{:.2}x", cascade_ns / dispatched_ns),
    ]);
    simd_table.row(vec![
        "add_slice portable lanes".into(),
        f2(portable_ns),
        format!("{:.2}x", portable_ns / dispatched_ns),
    ]);
    simd_table.row(vec![
        "add_slice dispatched".into(),
        f2(dispatched_ns),
        "1.00x".into(),
    ]);
    simd_table.row(vec![
        "q6 fused scan, forced scalar".into(),
        f2(q6_scalar_ns),
        format!("{:.2}x", q6_scalar_ns / q6_auto_ns),
    ]);
    simd_table.row(vec![
        "q6 fused scan, dispatched".into(),
        f2(q6_auto_ns),
        "1.00x".into(),
    ]);
    simd_table.print();
    simd_table.write_csv("fig9_simd");

    if let Some((ge_smoke, serial, parallel)) = smoke {
        write_bench_smoke(&BenchSmoke {
            bench: "fig9_partition_depth",
            config: &format!("repro<f32,2> buffered, groups=2^{ge_smoke}, model depth"),
            n: cfg.n,
            pool_threads: pool,
            serial_ns_per_elem: serial,
            parallel_ns_per_elem: parallel,
            scan: Some(ScanSmoke {
                query: "tpch_q1 serial repro<d,4> buffered",
                fused_ns_per_elem: fused,
                materializing_ns_per_elem: materializing,
            }),
            hash_group: Some(HashGroupSmoke {
                query: "plan sum-by-key serial repro<d,4> buffered",
                groups: domain,
                hash_ns_per_elem: hash_ns,
                dense_ns_per_elem: dense_ns,
                sparse_ns_per_elem: sparse_ns,
            }),
            sql: Some(SqlSmoke {
                query: "tpch_q6 serial repro<d,4> buffered",
                sql_ns_per_elem: sql_ns,
                cached_ns_per_elem: cached_ns,
                builder_ns_per_elem: builder_ns,
            }),
            simd: Some(SimdSmoke {
                level,
                add_slice_cascade_ns_per_elem: cascade_ns,
                add_slice_portable_ns_per_elem: portable_ns,
                add_slice_dispatched_ns_per_elem: dispatched_ns,
                q6_scalar_ns_per_elem: q6_scalar_ns,
                q6_dispatched_ns_per_elem: q6_auto_ns,
            }),
        });
    }
    println!(
        "  parallel shape: wall-clock speedup approaches the worker count once the\n  \
         input spans enough morsels; on a single-core host both columns coincide\n  \
         (the split tree is identical — only the scheduling differs).\n  \
         scan shape: fused ns/elem at or below materializing — same arithmetic,\n  \
         no n-sized intermediates (bit-identical output, proptest-enforced).\n  \
         hash-group shape: hash within a small constant of dense ids — the SIMD\n  \
         gather-compare probe resolves resident keys in bulk; the sparse ×1000 arm\n  \
         pays the multiplicative hash on top. All arms bit-identical (asserted,\n  \
         including vs forced-scalar dispatch) before the smoke object is written.\n  \
         sql shape: the cold SQL arm re-parses and re-lowers per run yet stays near\n  \
         1.00x of the prebuilt plan; the warm plan-cache arm must sit within a few\n  \
         percent of the builder (all three cross-asserted bit-identical).\n  \
         simd shape: the dispatched add_slice at or below the portable lanes, both\n  \
         well below the per-value cascade; Q6 dispatched at or below forced scalar\n  \
         (bit-identical by construction — the speedup is free of semantics)."
    );
}
