//! Operator comparison beyond the paper's figures: the four GROUPBY
//! strategies of this workspace side by side, on `repro<float,2>` with
//! summation buffers.
//!
//! * PARTITIONANDAGGREGATE with the model-chosen depth (paper's choice);
//! * HASHAGGREGATION only (d = 0);
//! * SHAREDAGGREGATION (lock-striped shared table, §VII related work) —
//!   competitive when the result exceeds private caches but fits shared
//!   cache;
//! * the adaptive operator (§V-C mechanism) — needs no group-count hint
//!   and should track the best fixed-depth configuration.

use rfa_agg::{
    adaptive_aggregate, partition_and_aggregate, shared_aggregate, AdaptiveConfig,
    BufferedReproAgg, GroupByConfig, SharedAggConfig,
};
use rfa_bench::{f2, ns_per_elem, time_min, BenchConfig, ResultTable};
use rfa_core::CacheModel;
use rfa_workloads::{zipf_pairs, GroupedPairs, ValueDist};

fn main() {
    let cfg = BenchConfig::from_env();
    let model = CacheModel::default();

    let mut table = ResultTable::new(
        format!(
            "Operator comparison: repro<float,2> buffered, ns/elem, n = 2^{}",
            cfg.n.trailing_zeros()
        ),
        &[
            "log2(groups)",
            "part+agg (model d)",
            "hash only (d=0)",
            "shared table",
            "adaptive",
        ],
    );

    for ge in (2..=cfg.max_group_exp()).step_by(4) {
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 41 + ge as u64);
        let v32 = w.values_f32();
        let depth = model.partition_depth(g, 4);
        let bsz = model.buffer_size(g, 4, depth);
        let f = BufferedReproAgg::<f32, 2>::new(bsz);

        let pna_cfg = GroupByConfig {
            depth,
            groups_hint: g,
            threads: 1,
            ..Default::default()
        };
        let pna = time_min(cfg.reps, || {
            std::hint::black_box(partition_and_aggregate(&f, &w.keys, &v32, &pna_cfg));
        });
        let hash_cfg = GroupByConfig {
            depth: 0,
            groups_hint: g,
            threads: 1,
            ..Default::default()
        };
        let f0 = BufferedReproAgg::<f32, 2>::new(model.buffer_size(g, 4, 0));
        let hash = time_min(cfg.reps, || {
            std::hint::black_box(partition_and_aggregate(&f0, &w.keys, &v32, &hash_cfg));
        });
        let shared_cfg = SharedAggConfig {
            threads: 2,
            groups_hint: g,
            ..Default::default()
        };
        let shared = time_min(cfg.reps, || {
            std::hint::black_box(shared_aggregate(&f0, &w.keys, &v32, &shared_cfg));
        });
        let ada_cfg = AdaptiveConfig::default();
        let ada = time_min(cfg.reps, || {
            std::hint::black_box(adaptive_aggregate(&f, &w.keys, &v32, &ada_cfg));
        });

        let n = w.keys.len();
        table.row(vec![
            ge.to_string(),
            f2(ns_per_elem(pna, n)),
            f2(ns_per_elem(hash, n)),
            f2(ns_per_elem(shared, n) * 2.0), // CPU time: 2 threads
            f2(ns_per_elem(ada, n)),
        ]);
    }
    table.print();
    table.write_csv("operators_compare");

    // Skew check: reproducibility is unaffected by Zipf keys (results
    // bit-identical across operators); performance may differ (hot shard).
    let w = zipf_pairs(cfg.n.min(1 << 19), 1 << 12, 1.0, ValueDist::Uniform01, 77);
    let v32 = w.values_f32();
    let f = BufferedReproAgg::<f32, 2>::new(64);
    let a = partition_and_aggregate(
        &f,
        &w.keys,
        &v32,
        &GroupByConfig {
            depth: 1,
            groups_hint: 1 << 12,
            threads: 1,
            ..Default::default()
        },
    );
    let b = shared_aggregate(&f, &w.keys, &v32, &SharedAggConfig::default());
    let c = adaptive_aggregate(&f, &w.keys, &v32, &AdaptiveConfig::default());
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    for ((x, y), z) in a.iter().zip(&b).zip(&c) {
        assert_eq!(x.1.to_bits(), y.1.to_bits());
        assert_eq!(x.1.to_bits(), z.1.to_bits());
    }
    println!(
        "\n  Zipf(1.0) skew over 4096 keys: all operators bit-identical ✓\n  \
         expected shape: hash-only wins small group counts; part+agg wins large;\n  \
         adaptive tracks the winner without a group-count hint."
    );
}
