//! Figure 4 — HASHAGGREGATION with different reproducible data types and
//! 16 groups.
//!
//! Paper result: with only 16 groups (no cache or partitioning effects),
//! `repro<ScalarT, L>` is 3.7×–12.3× slower than built-in types, growing
//! with L; float and double behave alike (the cascade is compute-bound
//! and latency-dominated, not width-dominated).

use rfa_agg::{hash_aggregate, AggFn, HashKind, ReproAgg, SumAgg};
use rfa_bench::{f2, ns_per_elem, time_min, BenchConfig, ResultTable};
use rfa_workloads::{GroupedPairs, ValueDist};

const GROUPS: u32 = 16;

fn run<F>(f: &F, keys: &[u32], values: &[F::Input], reps: usize) -> f64
where
    F: AggFn,
{
    let d = time_min(reps, || {
        std::hint::black_box(hash_aggregate(
            f,
            keys,
            values,
            HashKind::Identity,
            GROUPS as usize,
        ));
    });
    ns_per_elem(d, keys.len())
}

fn main() {
    let cfg = BenchConfig::from_env();
    let w = GroupedPairs::generate(cfg.n, GROUPS, ValueDist::Uniform01, 4);
    let v64 = &w.values;
    let v32 = w.values_f32();
    let vu32: Vec<u32> = w.values.iter().map(|&v| (v * 1e6) as u32).collect();

    let mut rows: Vec<(String, f64)> = Vec::new();
    rows.push((
        "uint32_t".into(),
        run(&SumAgg::<u32>::new(), &w.keys, &vu32, cfg.reps),
    ));
    rows.push((
        "float".into(),
        run(&SumAgg::<f32>::new(), &w.keys, &v32, cfg.reps),
    ));
    rows.push((
        "double".into(),
        run(&SumAgg::<f64>::new(), &w.keys, v64, cfg.reps),
    ));
    macro_rules! repro_rows {
        ($t:ty, $vals:expr, $name:literal) => {
            rows.push((
                format!("repro<{},1>", $name),
                run(&ReproAgg::<$t, 1>::new(), &w.keys, $vals, cfg.reps),
            ));
            rows.push((
                format!("repro<{},2>", $name),
                run(&ReproAgg::<$t, 2>::new(), &w.keys, $vals, cfg.reps),
            ));
            rows.push((
                format!("repro<{},3>", $name),
                run(&ReproAgg::<$t, 3>::new(), &w.keys, $vals, cfg.reps),
            ));
            rows.push((
                format!("repro<{},4>", $name),
                run(&ReproAgg::<$t, 4>::new(), &w.keys, $vals, cfg.reps),
            ));
        };
    }
    repro_rows!(f32, &v32, "float");
    repro_rows!(f64, v64, "double");

    let baseline = rows[0].1;
    let mut table = ResultTable::new(
        format!(
            "Figure 4: HASHAGGREGATION per data type, {GROUPS} groups, n = 2^{}",
            cfg.n.trailing_zeros()
        ),
        &["data type", "ns/elem", "slowdown vs uint32"],
    );
    for (name, ns) in &rows {
        table.row(vec![
            name.clone(),
            f2(*ns),
            format!("{:.2}x", ns / baseline),
        ]);
    }
    table.print();
    table.write_csv("fig4_hashagg_types");
    println!(
        "  paper shape: uint32≈float≈double; repro 4x-12x slower, growing with L,\n  \
         float and double repro variants nearly identical."
    );
}
