//! Figure 8 — impact of the summation-buffer size on
//! PARTITIONANDAGGREGATE with d = 0 (no partitioning).
//!
//! Paper shape: (a) with 16 groups, bigger buffers are monotonically
//! better until gains flatten around bsz = 2^8; (b) with 1024 groups,
//! performance collapses once `groups × bsz × sizeof(T)` exceeds the
//! per-thread cache budget (bsz > 2^8 for f32, > 2^7 for f64); (c) for a
//! fixed bsz, the collapse appears at the group count predicted by Eq. 4.

use rfa_agg::BufferedReproAgg;
use rfa_bench::{f2, runner::groupby_ns, BenchConfig, ResultTable};
use rfa_workloads::{GroupedPairs, ValueDist};

fn panel_ab(cfg: &BenchConfig, groups: u32, csv: &str) {
    let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 8);
    let v32 = w.values_f32();
    let mut table = ResultTable::new(
        format!("Figure 8: {groups} groups, d = 0, ns/elem"),
        &["bsz", "r<f,2>", "r<f,3>", "r<d,2>", "r<d,3>"],
    );
    for exp in 4..=10u32 {
        let bsz = 1usize << exp;
        let g = groups as usize;
        table.row(vec![
            bsz.to_string(),
            f2(groupby_ns(
                &BufferedReproAgg::<f32, 2>::new(bsz),
                &w.keys,
                &v32,
                0,
                g,
                cfg.reps,
            )),
            f2(groupby_ns(
                &BufferedReproAgg::<f32, 3>::new(bsz),
                &w.keys,
                &v32,
                0,
                g,
                cfg.reps,
            )),
            f2(groupby_ns(
                &BufferedReproAgg::<f64, 2>::new(bsz),
                &w.keys,
                &w.values,
                0,
                g,
                cfg.reps,
            )),
            f2(groupby_ns(
                &BufferedReproAgg::<f64, 3>::new(bsz),
                &w.keys,
                &w.values,
                0,
                g,
                cfg.reps,
            )),
        ]);
    }
    table.print();
    table.write_csv(csv);
}

fn panel_c(cfg: &BenchConfig) {
    let mut table = ResultTable::new(
        "Figure 8c: repro<float,2>, d = 0, ns/elem across group counts",
        &["log2(groups)", "bsz=16", "bsz=64", "bsz=256", "bsz=1024"],
    );
    let max_exp = cfg.max_group_exp().min(14);
    for ge in (4..=max_exp).step_by(2) {
        let groups = 1u32 << ge;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 9 + ge as u64);
        let v32 = w.values_f32();
        let mut row = vec![ge.to_string()];
        for bsz in [16usize, 64, 256, 1024] {
            row.push(f2(groupby_ns(
                &BufferedReproAgg::<f32, 2>::new(bsz),
                &w.keys,
                &v32,
                0,
                groups as usize,
                cfg.reps,
            )));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("fig8c_buffer_size_groups");
}

fn main() {
    let cfg = BenchConfig::from_env();
    panel_ab(&cfg, 16, "fig8a_buffer_size_16groups");
    panel_ab(&cfg, 1024, "fig8b_buffer_size_1024groups");
    panel_c(&cfg);
    println!(
        "\n  paper shape: (a) larger buffers monotonically better, flat after 2^8;\n  \
         (b) cliff beyond bsz 2^8 (f32) / 2^7 (f64) as the working set leaves cache;\n  \
         (c) per-bsz cliff at the group count predicted by Eq. 4."
    );
}
