//! Figure 7 — PARTITIONANDAGGREGATE on various `repro<ScalarT, L>`
//! *without* summation buffers, compared to the same algorithm on
//! float / DECIMAL.
//!
//! Paper shape: all types step up as more partitioning levels kick in;
//! unbuffered repro types run 4×–10× slower than float at small group
//! counts, converging to 1.5×–3× at large group counts (partitioning cost
//! is type-independent and increasingly dominates).

use rfa_agg::{ReproAgg, SumAgg};
use rfa_bench::{f2, runner::groupby_ns, BenchConfig, ResultTable};
use rfa_core::CacheModel;
use rfa_decimal::{Decimal18, Decimal38, Decimal9};
use rfa_workloads::{GroupedPairs, ValueDist};

fn main() {
    let cfg = BenchConfig::from_env();
    let model = CacheModel::default();
    let max_exp = cfg.max_group_exp();
    let group_exps: Vec<u32> = (0..=max_exp).step_by(2).collect();

    let mut table = ResultTable::new(
        format!(
            "Figure 7: unbuffered aggregation, ns/elem, n = 2^{}",
            cfg.n.trailing_zeros()
        ),
        &[
            "log2(groups)",
            "float",
            "double",
            "DEC(9)",
            "DEC(18)",
            "DEC(38)",
            "r<f,2>",
            "r<f,3>",
            "r<d,2>",
            "r<d,3>",
        ],
    );
    let mut slowdown = ResultTable::new(
        "Figure 7 (lower): slowdown compared to float",
        &[
            "log2(groups)",
            "double",
            "DEC(9)",
            "DEC(18)",
            "DEC(38)",
            "r<f,2>",
            "r<f,3>",
            "r<d,2>",
            "r<d,3>",
        ],
    );

    for &ge in &group_exps {
        let groups = 1u32 << ge;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 7 + ge as u64);
        let v32 = w.values_f32();
        let d9: Vec<Decimal9<4>> = w
            .values
            .iter()
            .map(|&v| Decimal9::from_raw((v * 1e4) as i32))
            .collect();
        let d18: Vec<Decimal18<4>> = w
            .values
            .iter()
            .map(|&v| Decimal18::from_raw((v * 1e4) as i64))
            .collect();
        let d38: Vec<Decimal38<4>> = w
            .values
            .iter()
            .map(|&v| Decimal38::from_raw((v * 1e4) as i128))
            .collect();
        let g = groups as usize;
        let depth = |vsize: usize| model.partition_depth(g, vsize);

        let t_f32 = groupby_ns(&SumAgg::<f32>::new(), &w.keys, &v32, depth(4), g, cfg.reps);
        let t_f64 = groupby_ns(
            &SumAgg::<f64>::new(),
            &w.keys,
            &w.values,
            depth(8),
            g,
            cfg.reps,
        );
        let t_d9 = groupby_ns(
            &SumAgg::<Decimal9<4>>::new(),
            &w.keys,
            &d9,
            depth(4),
            g,
            cfg.reps,
        );
        let t_d18 = groupby_ns(
            &SumAgg::<Decimal18<4>>::new(),
            &w.keys,
            &d18,
            depth(8),
            g,
            cfg.reps,
        );
        let t_d38 = groupby_ns(
            &SumAgg::<Decimal38<4>>::new(),
            &w.keys,
            &d38,
            depth(16),
            g,
            cfg.reps,
        );
        let t_rf2 = groupby_ns(
            &ReproAgg::<f32, 2>::new(),
            &w.keys,
            &v32,
            depth(4),
            g,
            cfg.reps,
        );
        let t_rf3 = groupby_ns(
            &ReproAgg::<f32, 3>::new(),
            &w.keys,
            &v32,
            depth(4),
            g,
            cfg.reps,
        );
        let t_rd2 = groupby_ns(
            &ReproAgg::<f64, 2>::new(),
            &w.keys,
            &w.values,
            depth(8),
            g,
            cfg.reps,
        );
        let t_rd3 = groupby_ns(
            &ReproAgg::<f64, 3>::new(),
            &w.keys,
            &w.values,
            depth(8),
            g,
            cfg.reps,
        );

        table.row(vec![
            ge.to_string(),
            f2(t_f32),
            f2(t_f64),
            f2(t_d9),
            f2(t_d18),
            f2(t_d38),
            f2(t_rf2),
            f2(t_rf3),
            f2(t_rd2),
            f2(t_rd3),
        ]);
        slowdown.row(vec![
            ge.to_string(),
            format!("{:.2}x", t_f64 / t_f32),
            format!("{:.2}x", t_d9 / t_f32),
            format!("{:.2}x", t_d18 / t_f32),
            format!("{:.2}x", t_d38 / t_f32),
            format!("{:.2}x", t_rf2 / t_f32),
            format!("{:.2}x", t_rf3 / t_f32),
            format!("{:.2}x", t_rd2 / t_f32),
            format!("{:.2}x", t_rd3 / t_f32),
        ]);
    }
    table.print();
    table.write_csv("fig7_unbuffered");
    slowdown.print();
    slowdown.write_csv("fig7_slowdown");
    println!(
        "  paper shape: repro slowdown 4x-10x at few groups, decaying to 1.5x-3x as\n  \
         partitioning (identical for all types) dominates; DEC(9)=float, DEC(38) slowest decimal."
    );
}
