//! Figure 6 — relative performance of RSUM algorithms compared to a
//! conventional sum, as a function of the chunk size `c`.
//!
//! The aggregation operators call the summation kernel once per buffered
//! chunk, so the kernel's start-up overhead vs. chunk size determines the
//! buffer-size trade-off. Paper shape: SCALAR beats SIMD for tiny chunks
//! (lane state load/store dominates), SIMD wins from c ≈ 12–48, and by
//! c = 512 SIMD reaches the single-call (c = ∞) throughput, within ~25%
//! of (or faster than) the conventional `std::accumulate` sum.

use rfa_bench::{time_min, BenchConfig, ResultTable};
use rfa_core::{simd, ReproFloat, ReproSum};
use rfa_workloads::{values_only, ValueDist};

fn bench_type<T: ReproFloat, const L: usize>(
    label: &str,
    values64: &[f64],
    cfg: &BenchConfig,
) -> ResultTable {
    let values: Vec<T> = values64.iter().map(|&v| T::from_f64(v)).collect();
    let n = values.len();

    // CONV: plain left-to-right sum (std::accumulate in the paper).
    let conv = time_min(cfg.reps, || {
        let mut acc = T::ZERO;
        for &v in &values {
            acc += v;
        }
        std::hint::black_box(acc);
    });

    // SIMD (c = ∞): a single kernel call over the whole input.
    let simd_inf = time_min(cfg.reps, || {
        let mut acc = ReproSum::<T, L>::new();
        simd::add_slice(&mut acc, &values);
        std::hint::black_box(acc.value());
    });

    let mut table = ResultTable::new(
        format!("Figure 6: {label}, n = 2^{}", n.trailing_zeros()),
        &[
            "c",
            "scalar ns/elem",
            "simd ns/elem",
            "scalar slowdown",
            "simd slowdown",
            "simd(c=inf) slowdown",
        ],
    );
    let conv_ns = conv.as_secs_f64() * 1e9 / n as f64;
    let inf_slow = simd_inf.as_secs_f64() / conv.as_secs_f64();

    for exp in 1..=9u32 {
        let c = 1usize << exp;
        let scalar = time_min(cfg.reps, || {
            let mut acc = ReproSum::<T, L>::new();
            for chunk in values.chunks(c) {
                acc.add_all(chunk);
            }
            std::hint::black_box(acc.value());
        });
        let vect = time_min(cfg.reps, || {
            let mut acc = ReproSum::<T, L>::new();
            for chunk in values.chunks(c) {
                simd::add_slice(&mut acc, chunk);
            }
            std::hint::black_box(acc.value());
        });
        table.row(vec![
            c.to_string(),
            format!("{:.2}", scalar.as_secs_f64() * 1e9 / n as f64),
            format!("{:.2}", vect.as_secs_f64() * 1e9 / n as f64),
            format!("{:.2}x", scalar.as_secs_f64() / conv.as_secs_f64()),
            format!("{:.2}x", vect.as_secs_f64() / conv.as_secs_f64()),
            format!("{inf_slow:.2}x"),
        ]);
    }
    println!("\n  [{label}] CONV baseline: {conv_ns:.2} ns/elem");
    table
}

fn main() {
    let cfg = BenchConfig::from_env();
    let values = values_only(cfg.n, ValueDist::Uniform01, 6);
    for (label, table) in [
        (
            "single precision, 2 levels",
            bench_type::<f32, 2>("repro<float,2>", &values, &cfg),
        ),
        (
            "single precision, 3 levels",
            bench_type::<f32, 3>("repro<float,3>", &values, &cfg),
        ),
        (
            "double precision, 2 levels",
            bench_type::<f64, 2>("repro<double,2>", &values, &cfg),
        ),
        (
            "double precision, 3 levels",
            bench_type::<f64, 3>("repro<double,3>", &values, &cfg),
        ),
    ] {
        table.print();
        table.write_csv(&format!("fig6_{}", label.replace([' ', ','], "_")));
    }
    println!(
        "\n  paper shape: scalar flat across c; simd slower than scalar at c<=8-32,\n  \
         crossing over between c=12 and c=48, approaching the c=inf line by c=512."
    );
}
