//! Figure 12 (Appendix B) — impact of the buffer size on
//! PARTITIONANDAGGREGATE with one partitioning pass (fan-out 256, d = 1).
//!
//! Paper shape: qualitatively identical to Figure 8, shifted by the
//! fan-out: the per-bsz performance cliff appears at 256× the group count,
//! and all curves carry the constant partitioning cost.

use rfa_agg::BufferedReproAgg;
use rfa_bench::{f2, runner::groupby_ns, BenchConfig, ResultTable};
use rfa_workloads::{GroupedPairs, ValueDist};

fn panel_ab(cfg: &BenchConfig, groups: u32, csv: &str) {
    let groups = groups.min(1 << cfg.max_group_exp());
    let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 14);
    let v32 = w.values_f32();
    let mut table = ResultTable::new(
        format!("Figure 12: {groups} groups, d = 1 (fan-out 256), ns/elem"),
        &["bsz", "r<f,2>", "r<f,3>", "r<d,2>", "r<d,3>"],
    );
    for exp in 4..=10u32 {
        let bsz = 1usize << exp;
        let g = groups as usize;
        table.row(vec![
            bsz.to_string(),
            f2(groupby_ns(
                &BufferedReproAgg::<f32, 2>::new(bsz),
                &w.keys,
                &v32,
                1,
                g,
                cfg.reps,
            )),
            f2(groupby_ns(
                &BufferedReproAgg::<f32, 3>::new(bsz),
                &w.keys,
                &v32,
                1,
                g,
                cfg.reps,
            )),
            f2(groupby_ns(
                &BufferedReproAgg::<f64, 2>::new(bsz),
                &w.keys,
                &w.values,
                1,
                g,
                cfg.reps,
            )),
            f2(groupby_ns(
                &BufferedReproAgg::<f64, 3>::new(bsz),
                &w.keys,
                &w.values,
                1,
                g,
                cfg.reps,
            )),
        ]);
    }
    table.print();
    table.write_csv(csv);
}

fn panel_c(cfg: &BenchConfig) {
    let mut table = ResultTable::new(
        "Figure 12c: repro<float,2>, d = 1, ns/elem across group counts",
        &["log2(groups)", "bsz=16", "bsz=64", "bsz=256", "bsz=1024"],
    );
    let max_exp = cfg.max_group_exp();
    for ge in (8..=max_exp.min(22)).step_by(2) {
        let groups = 1u32 << ge;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 15 + ge as u64);
        let v32 = w.values_f32();
        let mut row = vec![ge.to_string()];
        for bsz in [16usize, 64, 256, 1024] {
            row.push(f2(groupby_ns(
                &BufferedReproAgg::<f32, 2>::new(bsz),
                &w.keys,
                &v32,
                1,
                groups as usize,
                cfg.reps,
            )));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("fig12c_buffer_size_groups_d1");
}

fn main() {
    let cfg = BenchConfig::from_env();
    panel_ab(&cfg, 4096, "fig12a_buffer_size_4096groups");
    panel_ab(&cfg, 262_144, "fig12b_buffer_size_262144groups");
    panel_c(&cfg);
    println!(
        "\n  paper shape: same as Figure 8, shifted by the fan-out of 256 (the cliff\n  \
         appears 256x later in group count) plus a constant partitioning cost."
    );
}
