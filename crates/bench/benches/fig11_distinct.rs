//! Figure 11 (Appendix A) — PARTITIONANDAGGREGATE with `bsz = 256` for
//! various input sizes on `repro<float, 2>`, on (almost) distinct data.
//!
//! Paper shape: independent of the input size, ns/elem degrades sharply
//! once the average records-per-group `n / groups` drops below ~2^6 —
//! buffers no longer amortize, the result set leaves cache, and the local
//! aggregate → result transfer grows linear in the group count.

use rfa_agg::BufferedReproAgg;
use rfa_bench::{f2, runner::groupby_ns, BenchConfig, ResultTable};
use rfa_core::CacheModel;
use rfa_workloads::{GroupedPairs, ValueDist};

fn main() {
    let cfg = BenchConfig::from_env();
    let model = CacheModel::default();
    let max_exp = cfg.max_group_exp();
    let n_exps: Vec<u32> = (max_exp.saturating_sub(3)..=max_exp).collect();

    let mut table = ResultTable::new(
        "Figure 11: repro<float,2>, bsz = 256, ns/elem vs group count per input size",
        &["log2(groups)", "n=2^a", "n=2^b", "n=2^c", "n=2^d"],
    );
    println!(
        "  input sizes: {}",
        n_exps
            .iter()
            .map(|e| format!("2^{e}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Collect measurements per group-count row across the input sizes.
    let group_exps: Vec<u32> = (max_exp.saturating_sub(8)..=max_exp).step_by(2).collect();
    for &ge in &group_exps {
        let mut row = vec![ge.to_string()];
        for &ne in &n_exps {
            if ge > ne {
                row.push("-".into());
                continue;
            }
            let n = 1usize << ne;
            let groups = 1u32 << ge;
            let w = GroupedPairs::generate(n, groups, ValueDist::Uniform01, 13 + ge as u64);
            let v32 = w.values_f32();
            let depth = model.partition_depth(groups as usize, 4);
            let f = BufferedReproAgg::<f32, 2>::new(256);
            row.push(f2(groupby_ns(
                &f,
                &w.keys,
                &v32,
                depth,
                groups as usize,
                cfg.reps,
            )));
        }
        table.row(row);
    }
    table.print();
    table.write_csv("fig11_distinct");
    println!(
        "  paper shape: curves for all n overlap; degradation kicks in where\n  \
         n/groups < 2^6 for every input size (x-position shifts with n)."
    );
}
