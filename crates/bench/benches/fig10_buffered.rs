//! Figure 10 — PARTITIONANDAGGREGATE *with* summation buffers on various
//! `repro<ScalarT, L>`, compared to unbuffered DECIMAL baselines; plus the
//! slowdown-vs-float and speedup-vs-unbuffered panels.
//!
//! Paper shape: buffers collapse the gap between repro levels (all L
//! nearly identical — the cascade hides behind memory traffic); slowdown
//! vs. float mostly 1.3×–2.5×; speedup over the unbuffered variant 2×–5×
//! at small group counts, dipping below 1 only for nearly distinct keys.

use rfa_agg::{BufferedReproAgg, ReproAgg, SumAgg};
use rfa_bench::{
    f2,
    runner::{groupby_ns, groupby_ns_threads},
    BenchConfig, ResultTable,
};
use rfa_core::CacheModel;
use rfa_decimal::{Decimal18, Decimal38, Decimal9};
use rfa_workloads::{GroupedPairs, ValueDist};

fn main() {
    let cfg = BenchConfig::from_env();
    let model = CacheModel::default();
    let max_exp = cfg.max_group_exp();

    let mut abs = ResultTable::new(
        format!(
            "Figure 10: buffered aggregation, ns/elem, n = 2^{}",
            cfg.n.trailing_zeros()
        ),
        &[
            "log2(groups)",
            "float",
            "r<f,2>b",
            "r<f,3>b",
            "r<d,2>b",
            "r<d,3>b",
            "DEC(9)",
            "DEC(18)",
            "DEC(38)",
        ],
    );
    let mut slow = ResultTable::new(
        "Figure 10 (middle): slowdown compared to float",
        &[
            "log2(groups)",
            "r<f,2>b",
            "r<f,3>b",
            "r<d,2>b",
            "r<d,3>b",
            "DEC(9)",
            "DEC(18)",
            "DEC(38)",
        ],
    );
    let mut speedup = ResultTable::new(
        "Figure 10 (lower): speedup of buffered over unbuffered repro",
        &["log2(groups)", "r<f,2>", "r<f,3>", "r<d,2>", "r<d,3>"],
    );

    for ge in (0..=max_exp).step_by(2) {
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 11 + ge as u64);
        let v32 = w.values_f32();
        let d9: Vec<Decimal9<4>> = w
            .values
            .iter()
            .map(|&v| Decimal9::from_raw((v * 1e4) as i32))
            .collect();
        let d18: Vec<Decimal18<4>> = w
            .values
            .iter()
            .map(|&v| Decimal18::from_raw((v * 1e4) as i64))
            .collect();
        let d38: Vec<Decimal38<4>> = w
            .values
            .iter()
            .map(|&v| Decimal38::from_raw((v * 1e4) as i128))
            .collect();

        let depth32 = model.partition_depth(g, 4);
        let depth64 = model.partition_depth(g, 8);
        let bsz32 = model.buffer_size(g, 4, depth32);
        let bsz64 = model.buffer_size(g, 8, depth64);

        let t_f32 = groupby_ns(&SumAgg::<f32>::new(), &w.keys, &v32, depth32, g, cfg.reps);
        let bf2 = groupby_ns(
            &BufferedReproAgg::<f32, 2>::new(bsz32),
            &w.keys,
            &v32,
            depth32,
            g,
            cfg.reps,
        );
        let bf3 = groupby_ns(
            &BufferedReproAgg::<f32, 3>::new(bsz32),
            &w.keys,
            &v32,
            depth32,
            g,
            cfg.reps,
        );
        let bd2 = groupby_ns(
            &BufferedReproAgg::<f64, 2>::new(bsz64),
            &w.keys,
            &w.values,
            depth64,
            g,
            cfg.reps,
        );
        let bd3 = groupby_ns(
            &BufferedReproAgg::<f64, 3>::new(bsz64),
            &w.keys,
            &w.values,
            depth64,
            g,
            cfg.reps,
        );
        let t_d9 = groupby_ns(
            &SumAgg::<Decimal9<4>>::new(),
            &w.keys,
            &d9,
            depth32,
            g,
            cfg.reps,
        );
        let t_d18 = groupby_ns(
            &SumAgg::<Decimal18<4>>::new(),
            &w.keys,
            &d18,
            depth64,
            g,
            cfg.reps,
        );
        let t_d38 = groupby_ns(
            &SumAgg::<Decimal38<4>>::new(),
            &w.keys,
            &d38,
            model.partition_depth(g, 16),
            g,
            cfg.reps,
        );
        let uf2 = groupby_ns(
            &ReproAgg::<f32, 2>::new(),
            &w.keys,
            &v32,
            depth32,
            g,
            cfg.reps,
        );
        let uf3 = groupby_ns(
            &ReproAgg::<f32, 3>::new(),
            &w.keys,
            &v32,
            depth32,
            g,
            cfg.reps,
        );
        let ud2 = groupby_ns(
            &ReproAgg::<f64, 2>::new(),
            &w.keys,
            &w.values,
            depth64,
            g,
            cfg.reps,
        );
        let ud3 = groupby_ns(
            &ReproAgg::<f64, 3>::new(),
            &w.keys,
            &w.values,
            depth64,
            g,
            cfg.reps,
        );

        abs.row(vec![
            ge.to_string(),
            f2(t_f32),
            f2(bf2),
            f2(bf3),
            f2(bd2),
            f2(bd3),
            f2(t_d9),
            f2(t_d18),
            f2(t_d38),
        ]);
        let x = |v: f64| format!("{:.2}x", v / t_f32);
        slow.row(vec![
            ge.to_string(),
            x(bf2),
            x(bf3),
            x(bd2),
            x(bd3),
            x(t_d9),
            x(t_d18),
            x(t_d38),
        ]);
        speedup.row(vec![
            ge.to_string(),
            format!("{:.2}x", uf2 / bf2),
            format!("{:.2}x", uf3 / bf3),
            format!("{:.2}x", ud2 / bd2),
            format!("{:.2}x", ud3 / bd3),
        ]);
    }
    abs.print();
    abs.write_csv("fig10_buffered");
    slow.print();
    slow.write_csv("fig10_slowdown");
    speedup.print();
    speedup.write_csv("fig10_speedup");
    println!(
        "  paper shape: buffered repro levels nearly coincide; slowdown vs float mostly\n  \
         1.3x-2.5x; buffered beats unbuffered 2x-5x except for nearly distinct keys."
    );

    // --- parallel panel: buffered repro<f64,2>, serial vs pool -----------
    let pool = rayon::current_num_threads();
    let mut par = ResultTable::new(
        format!("Figure 10 (parallel): r<d,2>b, serial vs pool ({pool} workers), ns/elem"),
        &["log2(groups)", "serial", "pool", "speedup"],
    );
    for ge in (0..=max_exp).step_by(4) {
        let groups = 1u32 << ge;
        let g = groups as usize;
        let w = GroupedPairs::generate(cfg.n, groups, ValueDist::Uniform01, 40 + ge as u64);
        let depth = model.partition_depth(g, 8);
        let f = BufferedReproAgg::<f64, 2>::new(model.buffer_size(g, 8, depth));
        let serial = groupby_ns(&f, &w.keys, &w.values, depth, g, cfg.reps);
        let parallel = groupby_ns_threads(&f, &w.keys, &w.values, depth, g, cfg.reps, pool);
        par.row(vec![
            ge.to_string(),
            f2(serial),
            f2(parallel),
            format!("{:.2}x", serial / parallel),
        ]);
    }
    par.print();
    par.write_csv("fig10_parallel");
}
