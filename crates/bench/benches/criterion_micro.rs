//! Criterion micro-benchmarks of the core primitives underlying every
//! figure: scalar deposits, the vectorized kernel, radix partitioning and
//! hash-table aggregation.
//!
//! These complement the custom figure harnesses with statistically
//! rigorous single-primitive measurements (useful when tuning the kernel).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rfa_agg::{
    hash_aggregate, hash_aggregate_batched, partition_serial, HashKind, ReproAgg, SumAgg,
};
use rfa_core::{simd, ReproSum};
use rfa_workloads::{GroupedPairs, ValueDist};
use std::hint::black_box;

const N: usize = 1 << 16;

fn bench_summation(c: &mut Criterion) {
    let w = GroupedPairs::generate(N, 16, ValueDist::Uniform01, 21);
    let values = &w.values;
    let mut g = c.benchmark_group("summation");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("conventional_f64", |b| {
        b.iter(|| black_box(values.iter().sum::<f64>()))
    });
    g.bench_function("repro_scalar_f64_L2", |b| {
        b.iter(|| {
            let mut acc = ReproSum::<f64, 2>::new();
            acc.add_all(values);
            black_box(acc.value())
        })
    });
    g.bench_function("repro_simd_f64_L2", |b| {
        b.iter(|| {
            let mut acc = ReproSum::<f64, 2>::new();
            simd::add_slice(&mut acc, values);
            black_box(acc.value())
        })
    });
    g.finish();
}

fn bench_operators(c: &mut Criterion) {
    let w = GroupedPairs::generate(N, 1024, ValueDist::Uniform01, 22);
    let mut g = c.benchmark_group("operators");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("partition_serial_256", |b| {
        b.iter(|| {
            black_box(partition_serial(
                &w.keys,
                &w.values,
                HashKind::Identity,
                8,
                0,
            ))
        })
    });
    g.bench_function("hash_agg_f64", |b| {
        b.iter(|| {
            black_box(hash_aggregate(
                &SumAgg::<f64>::new(),
                &w.keys,
                &w.values,
                HashKind::Identity,
                1024,
            ))
        })
    });
    g.bench_function("hash_agg_repro_f64_L2", |b| {
        b.iter(|| {
            black_box(hash_aggregate(
                &ReproAgg::<f64, 2>::new(),
                &w.keys,
                &w.values,
                HashKind::Identity,
                1024,
            ))
        })
    });
    g.finish();
}

/// Pool primitives: the same grouped aggregation serial vs morsel-parallel
/// (read the speedup straight off the thrpt column), plus the parallel
/// merge sort against std's sequential sort.
fn bench_parallel(c: &mut Criterion) {
    use rfa_agg::{partition_and_aggregate, GroupByConfig};

    const NP: usize = 1 << 19;
    let pool = rayon::current_num_threads();
    let w = GroupedPairs::generate(NP, 1024, ValueDist::Uniform01, 23);
    let mut g = c.benchmark_group("parallel");
    g.throughput(Throughput::Elements(NP as u64));
    let cfg = |threads| GroupByConfig {
        groups_hint: 1024,
        threads,
        ..Default::default()
    };
    g.bench_function("groupby_repro_serial", |b| {
        let f = ReproAgg::<f64, 2>::new();
        b.iter(|| black_box(partition_and_aggregate(&f, &w.keys, &w.values, &cfg(1))))
    });
    g.bench_function(format!("groupby_repro_pool_{pool}t"), |b| {
        let f = ReproAgg::<f64, 2>::new();
        b.iter(|| black_box(partition_and_aggregate(&f, &w.keys, &w.values, &cfg(pool))))
    });
    let unsorted: Vec<u64> = (0..NP as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    g.bench_function("sort_u64_seq", |b| {
        b.iter(|| {
            let mut v = unsorted.clone();
            v.sort_unstable();
            black_box(v)
        })
    });
    g.bench_function(format!("sort_u64_pool_{pool}t"), |b| {
        use rayon::prelude::*;
        b.iter(|| {
            let mut v = unsorted.clone();
            v.par_sort_unstable();
            black_box(v)
        })
    });
    g.finish();
}

/// Fused-scan primitives: per-batch overhead of the zero-copy pipeline in
/// isolation — batched expression evaluation into reused scratch, the
/// batched hash-table probe, and the end-to-end fused-vs-materializing
/// query pair (read the fusion win straight off the thrpt column).
fn bench_fused_scan(c: &mut Criterion) {
    use rfa_engine::{
        lineitem_table, run_q1, run_q1_materializing, run_q6, run_q6_materializing, EvalScratch,
        Expr, SumBackend,
    };
    use rfa_workloads::Lineitem;

    let lineitem = Lineitem::generate(N, 7);
    let backend = SumBackend::ReproBuffered { buffer_size: 1024 };
    let mut g = c.benchmark_group("fused_scan");
    g.throughput(Throughput::Elements(N as u64));

    g.bench_function("q1_fused", |b| {
        b.iter(|| black_box(run_q1(&lineitem, backend).unwrap()))
    });
    g.bench_function("q1_materializing", |b| {
        b.iter(|| black_box(run_q1_materializing(&lineitem, backend).unwrap()))
    });
    g.bench_function("q6_fused", |b| {
        b.iter(|| black_box(run_q6(&lineitem, backend).unwrap()))
    });
    g.bench_function("q6_materializing", |b| {
        b.iter(|| black_box(run_q6_materializing(&lineitem, backend).unwrap()))
    });

    // Compiled batch evaluation of the Q1 charge expression over reused
    // scratch registers (no allocation in the measured loop).
    let table = lineitem_table(&lineitem);
    let charge = Expr::col("l_extendedprice")
        .mul(Expr::lit(1.0).sub(Expr::col("l_discount")))
        .mul(Expr::lit(1.0).add(Expr::col("l_tax")))
        .compile();
    let bound = charge.bind(&table).unwrap();
    let sel: Vec<u32> = (0..N as u32).collect();
    let mut scratch = EvalScratch::new();
    let mut out = vec![0.0f64; 4096];
    g.bench_function("expr_charge_batched_eval", |b| {
        b.iter(|| {
            for chunk in sel.chunks(4096) {
                bound.eval_into(chunk, &mut scratch, &mut out[..chunk.len()]);
                black_box(&out);
            }
        })
    });

    // Batched vs scalar hash-table probe on repro states.
    let w = GroupedPairs::generate(N, 1024, ValueDist::Uniform01, 24);
    g.bench_function("hash_agg_batched_repro_f64_L2", |b| {
        b.iter(|| {
            black_box(hash_aggregate_batched(
                &ReproAgg::<f64, 2>::new(),
                &w.keys,
                &w.values,
                HashKind::Identity,
                1024,
                4096,
            ))
        })
    });
    g.finish();
}

/// SIMD dispatch: the repro summation kernel per level (per-value scalar
/// cascade vs the portable lane-array block kernel vs forced AVX2) for
/// f64 and f32 at several sizes, and the AVX2 selection-vector build at
/// low/half/high selectivity. All arms are bit-identical (proptested);
/// the thrpt columns read directly as the dispatch win.
fn bench_simd(c: &mut Criterion) {
    use rfa_core::cpu::{self, SimdLevel};
    use rfa_engine::{BoolExpr, CmpOp, Column, EvalScratch, Expr, Table};

    let avx2 = cpu::avx2_supported();
    let mut g = c.benchmark_group("simd");

    for exp in [10u32, 14, 18] {
        let n = 1usize << exp;
        let w = GroupedPairs::generate(n, 16, ValueDist::Uniform01, 25 + exp as u64);
        let v64 = &w.values;
        let v32 = w.values_f32();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("add_slice_f64_cascade_2^{exp}"), |b| {
            b.iter(|| {
                let mut acc = ReproSum::<f64, 2>::new();
                acc.add_all(v64);
                black_box(acc.value())
            })
        });
        g.bench_function(format!("add_slice_f64_portable_2^{exp}"), |b| {
            b.iter(|| {
                let mut acc = ReproSum::<f64, 2>::new();
                simd::add_slice_portable(&mut acc, v64);
                black_box(acc.value())
            })
        });
        if avx2 {
            cpu::set_override(Some(SimdLevel::Avx2));
            g.bench_function(format!("add_slice_f64_avx2_2^{exp}"), |b| {
                b.iter(|| {
                    let mut acc = ReproSum::<f64, 2>::new();
                    simd::add_slice(&mut acc, v64);
                    black_box(acc.value())
                })
            });
            cpu::set_override(None);
        }
        g.bench_function(format!("add_slice_f32_cascade_2^{exp}"), |b| {
            b.iter(|| {
                let mut acc = ReproSum::<f32, 2>::new();
                acc.add_all(&v32);
                black_box(acc.value())
            })
        });
        g.bench_function(format!("add_slice_f32_portable_2^{exp}"), |b| {
            b.iter(|| {
                let mut acc = ReproSum::<f32, 2>::new();
                simd::add_slice_portable(&mut acc, &v32);
                black_box(acc.value())
            })
        });
        if avx2 {
            cpu::set_override(Some(SimdLevel::Avx2));
            g.bench_function(format!("add_slice_f32_avx2_2^{exp}"), |b| {
                b.iter(|| {
                    let mut acc = ReproSum::<f32, 2>::new();
                    simd::add_slice(&mut acc, &v32);
                    black_box(acc.value())
                })
            });
            cpu::set_override(None);
        }
    }

    // Selection-vector build (the `BoundFast` fill kernel) over a
    // uniform-[0,1) f64 column; the threshold sets the selectivity.
    let n = N;
    let w = GroupedPairs::generate(n, 16, ValueDist::Uniform01, 29);
    let mut table = Table::new("t");
    table
        .add_column("x", Column::f64(w.values.clone()))
        .unwrap();
    g.throughput(Throughput::Elements(n as u64));
    for (pct, threshold) in [(2u32, 0.02f64), (50, 0.5), (98, 0.98)] {
        let pred = BoolExpr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::col("x")),
            Box::new(Expr::lit(threshold)),
        )
        .compile();
        let bound = pred.bind(&table).unwrap();
        let levels: &[(&str, SimdLevel)] = if avx2 {
            &[("scalar", SimdLevel::Scalar), ("avx2", SimdLevel::Avx2)]
        } else {
            &[("scalar", SimdLevel::Scalar)]
        };
        for &(name, level) in levels {
            cpu::set_override(Some(level));
            g.bench_function(format!("sel_fill_{pct}pct_{name}"), |b| {
                let mut sel: Vec<u32> = Vec::with_capacity(n);
                let mut scratch = EvalScratch::new();
                b.iter(|| {
                    bound.fill(0, n, &mut sel, &mut scratch);
                    black_box(sel.len())
                })
            });
            cpu::set_override(None);
        }
    }
    g.finish();
}

/// Batched hash-table probe (`AggHashTable::probe_batch`) under three key
/// mixes — hit-heavy (every key resident at its home slot, the SIMD
/// gather+compare bulk path), collision-chained (identity-aliased keys that
/// all share home slot 0, forcing the scalar chain drain), and miss-heavy
/// (all-new keys on a fresh table, pure scalar insertion) — per dispatch
/// level. All levels are bit-identical (proptested); the thrpt columns read
/// directly as the probe-kernel dispatch win per mix.
fn bench_hash_probe(c: &mut Criterion) {
    use rfa_agg::AggHashTable;
    use rfa_core::cpu::{self, SimdLevel};

    const GROUPS: usize = 1 << 12;
    const BATCH: usize = 4096;
    let mut levels: Vec<(&str, SimdLevel)> = vec![("scalar", SimdLevel::Scalar)];
    if cpu::avx2_supported() {
        levels.push(("avx2", SimdLevel::Avx2));
    }
    if cpu::avx512_supported() {
        levels.push(("avx512", SimdLevel::Avx512));
    }

    // Hit-heavy: GROUPS distinct keys cycled over N probes; after the first
    // pass every probe finds its key already resident.
    let hit_keys: Vec<u32> = (0..N as u32).map(|i| i % GROUPS as u32).collect();
    // Collision mix: 64 keys striding by 2^26 alias home slot 0 under
    // identity hashing for any table below 2^26 slots, so every probe walks
    // a linear chain and the gather+compare classifies it as a miss.
    let coll_keys: Vec<u32> = (0..N as u32).map(|i| (i % 64) << 26).collect();
    // Miss-heavy: N distinct keys probed once each against a fresh table.
    let miss_keys: Vec<u32> = (0..N as u32).collect();

    let mut g = c.benchmark_group("hash_probe");
    g.throughput(Throughput::Elements(N as u64));
    for &(name, level) in &levels {
        cpu::set_override(Some(level));

        g.bench_function(format!("hit_heavy_{name}"), |b| {
            let mut t = AggHashTable::with_capacity(GROUPS, HashKind::Identity, &0u32);
            let mut slots: Vec<u32> = Vec::new();
            t.probe_batch(&hit_keys, &0u32, &mut slots); // make all keys resident
            b.iter(|| {
                for chunk in hit_keys.chunks(BATCH) {
                    t.probe_batch(chunk, &0u32, &mut slots);
                    black_box(&slots);
                }
            })
        });

        g.bench_function(format!("collision_chain_{name}"), |b| {
            let mut t = AggHashTable::with_capacity(GROUPS, HashKind::Identity, &0u32);
            let mut slots: Vec<u32> = Vec::new();
            t.probe_batch(&coll_keys, &0u32, &mut slots);
            b.iter(|| {
                for chunk in coll_keys.chunks(BATCH) {
                    t.probe_batch(chunk, &0u32, &mut slots);
                    black_box(&slots);
                }
            })
        });

        // Fresh table per iteration (the vendored criterion has no
        // iter_batched); construction cost is shared by every level, so
        // the ratio between levels still isolates the probe path.
        g.bench_function(format!("miss_heavy_{name}"), |b| {
            let mut slots: Vec<u32> = Vec::new();
            b.iter(|| {
                let mut t = AggHashTable::with_capacity(N, HashKind::Multiplicative, &0u32);
                for chunk in miss_keys.chunks(BATCH) {
                    t.probe_batch(chunk, &0u32, &mut slots);
                    black_box(&slots);
                }
                black_box(t.len())
            })
        });

        cpu::set_override(None);
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_summation, bench_operators, bench_parallel, bench_fused_scan, bench_simd, bench_hash_probe
}
criterion_main!(benches);
