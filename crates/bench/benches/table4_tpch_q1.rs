//! Table IV — CPU time of different approaches for TPC-H Query 1,
//! relative to the total CPU time on built-in doubles (in %).
//!
//! Paper values (MonetDB): double = 34.2 agg / 65.8 other / 100 total;
//! repro<d,4> unbuffered = 51.3 / 63.1 / 114.4; repro<d,4> buffered =
//! 38.7 / 64.0 / 102.7 (the 2.7% headline); sorted double = 45.1 / 682.1
//! / 727.2 (sorting is catastrophic).
//!
//! The engine's default pipeline is the fused zero-copy scan, so the
//! first four columns measure it (materializing for the sorted baseline,
//! which must sort its projected columns). The "buffered (matz)" column
//! runs the same backend through the materializing reference pipeline —
//! the allocation overhead the fusion removed — and the last column runs
//! the fused pipeline morsel-parallel on the pool.
//!
//! Phase accounting: "Scan" is selection + group-id + projection,
//! "Aggregations" the SUM-state deposits and merges, "Other" sorting and
//! finalization. The paper's Table IV folds our Scan into its "Other";
//! compare paper "other" against Scan + Other. Table-view setup is
//! zero-copy (Arc clones) and free — it no longer pollutes any phase.

use rfa_bench::{BenchConfig, ResultTable};
use rfa_core::CacheModel;
use rfa_engine::{run_q1, run_q1_materializing, run_q1_par, PhaseTiming, SumBackend};
use rfa_workloads::Lineitem;

fn measure_with(
    t: &Lineitem,
    reps: usize,
    run: impl Fn(&Lineitem) -> (Vec<rfa_engine::Q1Row>, PhaseTiming),
) -> PhaseTiming {
    // Take the run with the minimal total; keep its phase split.
    let mut best = PhaseTiming::default();
    let mut best_total = std::time::Duration::MAX;
    let _warmup = run(t);
    for _ in 0..reps {
        let (_, timing) = run(t);
        if timing.total() < best_total {
            best_total = timing.total();
            best = timing;
        }
    }
    best
}

fn measure(t: &Lineitem, backend: SumBackend, reps: usize) -> PhaseTiming {
    measure_with(t, reps, |t| {
        run_q1(t, backend).expect("Q1 must not overflow")
    })
}

fn main() {
    let cfg = BenchConfig::from_env();
    // Q1 groups = 6, so Eq. 4 gives the maximal buffer size.
    let bsz = CacheModel::default().buffer_size(6, 8, 0);
    let rows_n = cfg.n;
    println!("generating lineitem with {rows_n} rows ...");
    let t = Lineitem::generate(rows_n, 1);

    let double = measure(&t, SumBackend::Double, cfg.reps);
    let unbuf = measure(&t, SumBackend::ReproUnbuffered, cfg.reps);
    let buf = measure(&t, SumBackend::ReproBuffered { buffer_size: bsz }, cfg.reps);
    let sorted = measure(&t, SumBackend::SortedDouble, cfg.reps);
    // The materializing reference pipeline on the buffered backend: what
    // the fused scan saves shows up in its Scan row.
    let buf_matz = measure_with(&t, cfg.reps, |t| {
        run_q1_materializing(t, SumBackend::ReproBuffered { buffer_size: bsz })
            .expect("Q1 must not overflow")
    });
    // Morsel-driven parallel fused scan + aggregation on the work-stealing
    // pool (bit-identical to the serial fused column; phase times are
    // summed across workers, i.e. CPU time like the paper reports).
    let pool = rayon::current_num_threads();
    let buf_par = measure_with(&t, cfg.reps, |t| {
        run_q1_par(t, SumBackend::ReproBuffered { buffer_size: bsz }).expect("Q1 must not overflow")
    });

    let base = double.total().as_secs_f64();
    let pct = |d: std::time::Duration| format!("{:.1}", 100.0 * d.as_secs_f64() / base);

    let par_col = format!("buffered par({pool}t)");
    let mut table = ResultTable::new(
        format!(
            "Table IV: TPC-H Q1 CPU time relative to double total (%), {rows_n} rows, bsz={bsz}"
        ),
        &[
            "phase",
            "double",
            "repro<d,4> unbuffered",
            "repro<d,4> buffered",
            "double (sorted)",
            "buffered (matz)",
            &par_col,
        ],
    );
    type PhaseGetter = fn(&PhaseTiming) -> std::time::Duration;
    let phases: [(&str, PhaseGetter); 4] = [
        ("Scan", |t| t.scan),
        ("Aggregations", |t| t.aggregation),
        ("Other", |t| t.other),
        ("Total", |t| t.total()),
    ];
    for (name, phase) in phases {
        table.row(vec![
            name.into(),
            pct(phase(&double)),
            pct(phase(&unbuf)),
            pct(phase(&buf)),
            pct(phase(&sorted)),
            pct(phase(&buf_matz)),
            pct(phase(&buf_par)),
        ]);
    }
    table.print();
    table.write_csv("table4_tpch_q1");
    println!(
        "  paper (agg/other/total): double 34.2/65.8/100.0; unbuffered 51.3/63.1/114.4;\n  \
         buffered 38.7/64.0/102.7; sorted 45.1/682.1/727.2. Our Scan row is part of\n  \
         the paper's 'other'; compare paper other vs Scan + Other.\n  \
         shape to check: buffered overhead within a few %, unbuffered tens of %,\n  \
         sorted several-fold slower end to end; 'buffered (matz)' pays extra Scan\n  \
         for its n-sized gather/projection vectors. The parallel column is CPU time\n  \
         summed over the {pool}-worker pool — wall clock drops by ~the worker count\n  \
         on real multicore hardware, bit-identical output either way."
    );
}
