//! Table IV — CPU time of different approaches for TPC-H Query 1,
//! relative to the total CPU time on built-in doubles (in %).
//!
//! Paper values (MonetDB): double = 34.2 agg / 65.8 other / 100 total;
//! repro<d,4> unbuffered = 51.3 / 63.1 / 114.4; repro<d,4> buffered =
//! 38.7 / 64.0 / 102.7 (the 2.7% headline); sorted double = 45.1 / 682.1
//! / 727.2 (sorting is catastrophic).

use rfa_bench::{BenchConfig, ResultTable};
use rfa_core::CacheModel;
use rfa_engine::{run_q1, PhaseTiming, SumBackend};
use rfa_workloads::Lineitem;

fn measure(t: &Lineitem, backend: SumBackend, reps: usize) -> PhaseTiming {
    // Take the run with the minimal total; keep its phase split.
    let mut best = PhaseTiming::default();
    let mut best_total = std::time::Duration::MAX;
    let _warmup = run_q1(t, backend).expect("Q1 must not overflow");
    for _ in 0..reps {
        let (_, timing) = run_q1(t, backend).expect("Q1 must not overflow");
        if timing.total() < best_total {
            best_total = timing.total();
            best = timing;
        }
    }
    best
}

fn main() {
    let cfg = BenchConfig::from_env();
    // Q1 groups = 6, so Eq. 4 gives the maximal buffer size.
    let bsz = CacheModel::default().buffer_size(6, 8, 0);
    let rows_n = cfg.n;
    println!("generating lineitem with {rows_n} rows ...");
    let t = Lineitem::generate(rows_n, 1);

    let double = measure(&t, SumBackend::Double, cfg.reps);
    let unbuf = measure(&t, SumBackend::ReproUnbuffered, cfg.reps);
    let buf = measure(&t, SumBackend::ReproBuffered { buffer_size: bsz }, cfg.reps);
    let sorted = measure(&t, SumBackend::SortedDouble, cfg.reps);

    let base = double.total().as_secs_f64();
    let pct = |d: std::time::Duration| format!("{:.1}", 100.0 * d.as_secs_f64() / base);

    let mut table = ResultTable::new(
        format!(
            "Table IV: TPC-H Q1 CPU time relative to double total (%), {rows_n} rows, bsz={bsz}"
        ),
        &[
            "phase",
            "double",
            "repro<d,4> unbuffered",
            "repro<d,4> buffered",
            "double (sorted)",
        ],
    );
    table.row(vec![
        "Aggregations".into(),
        pct(double.aggregation),
        pct(unbuf.aggregation),
        pct(buf.aggregation),
        pct(sorted.aggregation),
    ]);
    table.row(vec![
        "Other".into(),
        pct(double.other),
        pct(unbuf.other),
        pct(buf.other),
        pct(sorted.other),
    ]);
    table.row(vec![
        "Total".into(),
        pct(double.total()),
        pct(unbuf.total()),
        pct(buf.total()),
        pct(sorted.total()),
    ]);
    table.print();
    table.write_csv("table4_tpch_q1");
    println!(
        "  paper: double 34.2/65.8/100.0; unbuffered 51.3/63.1/114.4;\n  \
         buffered 38.7/64.0/102.7; sorted 45.1/682.1/727.2.\n  \
         shape to check: buffered overhead within a few %, unbuffered tens of %,\n  \
         sorted several-fold slower end to end."
    );
}
