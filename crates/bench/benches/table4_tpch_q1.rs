//! Table IV — CPU time of different approaches for TPC-H Query 1,
//! relative to the total CPU time on built-in doubles (in %).
//!
//! Paper values (MonetDB): double = 34.2 agg / 65.8 other / 100 total;
//! repro<d,4> unbuffered = 51.3 / 63.1 / 114.4; repro<d,4> buffered =
//! 38.7 / 64.0 / 102.7 (the 2.7% headline); sorted double = 45.1 / 682.1
//! / 727.2 (sorting is catastrophic).

use rfa_bench::{BenchConfig, ResultTable};
use rfa_core::CacheModel;
use rfa_engine::{run_q1, run_q1_par, PhaseTiming, SumBackend};
use rfa_workloads::Lineitem;

fn measure_with(
    t: &Lineitem,
    reps: usize,
    run: impl Fn(&Lineitem) -> (Vec<rfa_engine::Q1Row>, PhaseTiming),
) -> PhaseTiming {
    // Take the run with the minimal total; keep its phase split.
    let mut best = PhaseTiming::default();
    let mut best_total = std::time::Duration::MAX;
    let _warmup = run(t);
    for _ in 0..reps {
        let (_, timing) = run(t);
        if timing.total() < best_total {
            best_total = timing.total();
            best = timing;
        }
    }
    best
}

fn measure(t: &Lineitem, backend: SumBackend, reps: usize) -> PhaseTiming {
    measure_with(t, reps, |t| {
        run_q1(t, backend).expect("Q1 must not overflow")
    })
}

fn measure_par(t: &Lineitem, backend: SumBackend, reps: usize) -> PhaseTiming {
    measure_with(t, reps, |t| {
        run_q1_par(t, backend).expect("Q1 must not overflow")
    })
}

fn main() {
    let cfg = BenchConfig::from_env();
    // Q1 groups = 6, so Eq. 4 gives the maximal buffer size.
    let bsz = CacheModel::default().buffer_size(6, 8, 0);
    let rows_n = cfg.n;
    println!("generating lineitem with {rows_n} rows ...");
    let t = Lineitem::generate(rows_n, 1);

    let double = measure(&t, SumBackend::Double, cfg.reps);
    let unbuf = measure(&t, SumBackend::ReproUnbuffered, cfg.reps);
    let buf = measure(&t, SumBackend::ReproBuffered { buffer_size: bsz }, cfg.reps);
    let sorted = measure(&t, SumBackend::SortedDouble, cfg.reps);
    // Morsel-driven parallel scan + aggregation on the work-stealing pool
    // (wall clock; bit-identical to the serial buffered column).
    let pool = rayon::current_num_threads();
    let buf_par = measure_par(&t, SumBackend::ReproBuffered { buffer_size: bsz }, cfg.reps);

    let base = double.total().as_secs_f64();
    let pct = |d: std::time::Duration| format!("{:.1}", 100.0 * d.as_secs_f64() / base);

    let par_col = format!("repro<d,4> buf par({pool}t)");
    let mut table = ResultTable::new(
        format!(
            "Table IV: TPC-H Q1 CPU time relative to double total (%), {rows_n} rows, bsz={bsz}"
        ),
        &[
            "phase",
            "double",
            "repro<d,4> unbuffered",
            "repro<d,4> buffered",
            "double (sorted)",
            &par_col,
        ],
    );
    table.row(vec![
        "Aggregations".into(),
        pct(double.aggregation),
        pct(unbuf.aggregation),
        pct(buf.aggregation),
        pct(sorted.aggregation),
        pct(buf_par.aggregation),
    ]);
    table.row(vec![
        "Other".into(),
        pct(double.other),
        pct(unbuf.other),
        pct(buf.other),
        pct(sorted.other),
        pct(buf_par.other),
    ]);
    table.row(vec![
        "Total".into(),
        pct(double.total()),
        pct(unbuf.total()),
        pct(buf.total()),
        pct(sorted.total()),
        pct(buf_par.total()),
    ]);
    table.print();
    table.write_csv("table4_tpch_q1");
    println!(
        "  paper: double 34.2/65.8/100.0; unbuffered 51.3/63.1/114.4;\n  \
         buffered 38.7/64.0/102.7; sorted 45.1/682.1/727.2.\n  \
         shape to check: buffered overhead within a few %, unbuffered tens of %,\n  \
         sorted several-fold slower end to end. The parallel column is wall clock\n  \
         on the {pool}-worker pool — below the serial buffered column by ~the\n  \
         worker count on real multicore hardware, bit-identical output either way."
    );
}
