//! §I intro experiment — PageRank rank swaps across edge permutations.
//!
//! The paper: "We ran PageRank on different permutations of a small web
//! graph with 900 k pages … from one run to the next, the ranks of about
//! 10-20 pages would be different enough to swap ranks with another page."
//!
//! We run plain-float and reproducible PageRank over several deterministic
//! edge permutations of a synthetic scale-free graph and count the pages
//! whose ordinal rank changes.

use rfa_bench::{BenchConfig, ResultTable};
use rfa_workloads::{pagerank, pagerank_repro, rank_swaps, Graph, PageRankConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    // Scale the graph with the configured input size (900k pages at paper
    // scale, fewer by default).
    let nodes = (cfg.n / 16).clamp(2_000, 900_000);
    let graph = Graph::preferential_attachment(nodes, 4, 0xF00D);
    let pr_cfg = PageRankConfig::default();

    let base_plain = pagerank(&graph, &graph.edges, &pr_cfg);
    let base_repro = pagerank_repro::<2>(&graph, &graph.edges, &pr_cfg);

    let mut table = ResultTable::new(
        format!("Intro: PageRank rank swaps across edge permutations ({nodes} pages)"),
        &[
            "permutation",
            "plain: swapped ranks",
            "repro<double,2>: swapped ranks",
            "plain bit-identical?",
        ],
    );
    for seed in 1..=5u64 {
        let edges = graph.permuted_edges(seed);
        let plain = pagerank(&graph, &edges, &pr_cfg);
        let repro = pagerank_repro::<2>(&graph, &edges, &pr_cfg);
        let identical = base_plain
            .iter()
            .zip(plain.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let repro_identical = base_repro
            .iter()
            .zip(repro.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(repro_identical, "reproducible PageRank must not vary");
        table.row(vec![
            format!("#{seed}"),
            rank_swaps(&base_plain, &plain).to_string(),
            rank_swaps(&base_repro, &repro).to_string(),
            if identical { "yes" } else { "no" }.to_string(),
        ]);
    }
    table.print();
    table.write_csv("intro_pagerank");
    println!(
        "  paper shape: plain PageRank swaps the ranks of ~10-20 pages per permutation\n  \
         (growing with graph size); the reproducible variant swaps exactly 0."
    );
}
