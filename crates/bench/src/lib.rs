//! # rfa-bench — the paper's evaluation, regenerated
//!
//! One bench target per table and figure of the paper (§VI), each printing
//! the same rows/series the paper reports and writing CSV into `results/`.
//! See `EXPERIMENTS.md` at the workspace root for the experiment index and
//! the paper-vs-measured record.
//!
//! | target                | paper artifact                          |
//! |-----------------------|-----------------------------------------|
//! | `intro_pagerank`      | §I PageRank rank-swap observation       |
//! | `fig4_hashagg_types`  | Figure 4                                |
//! | `table2_accuracy`     | Table II                                |
//! | `fig6_chunked_rsum`   | Figure 6                                |
//! | `fig7_unbuffered`     | Figure 7                                |
//! | `fig8_buffer_size`    | Figure 8 (a, b, c)                      |
//! | `fig9_partition_depth`| Figure 9                                |
//! | `fig10_buffered`      | Figure 10                               |
//! | `table3_geomean`      | Table III                               |
//! | `table4_tpch_q1`      | Table IV                                |
//! | `fig11_distinct`      | Figure 11 (Appendix A)                  |
//! | `fig12_buffer_size_d1`| Figure 12 (Appendix B)                  |
//! | `ablation_design`     | (design-choice ablations: hashing, fan-out) |
//! | `operators_compare`   | (hash vs shared vs adaptive vs part+agg) |
//! | `criterion_micro`     | (criterion micro-benchmarks)            |
//!
//! ## Scaling
//!
//! The paper's machine sums `n = 2^30` rows on 8 Haswell cores; default
//! runs here are laptop-sized. Environment knobs:
//!
//! * `RFA_N=<num>` — input size (rows); default `2^20`.
//! * `RFA_FULL=1` — paper-scale `n = 2^30` (needs ~8+ GiB and patience).
//! * `RFA_QUICK=1` — smoke-test scale `n = 2^16`.
//! * `RFA_REPS=<num>` — timing repetitions (default 3, min is reported).
//! * `RFA_THREADS=<num>` — worker count of the global pool used by the
//!   parallel panels (default: `available_parallelism`).

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Input-size and repetition configuration, read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Number of input rows `n`.
    pub n: usize,
    /// Timing repetitions; the minimum is reported (standard practice for
    /// CPU-bound microbenchmarks: the minimum is the least-noisy sample).
    pub reps: usize,
}

impl BenchConfig {
    pub fn from_env() -> Self {
        let n = if let Ok(v) = std::env::var("RFA_N") {
            v.parse().expect("RFA_N must be an integer")
        } else if env_flag("RFA_FULL") {
            1 << 30
        } else if env_flag("RFA_QUICK") {
            1 << 16
        } else {
            1 << 20
        };
        let reps = std::env::var("RFA_REPS")
            .ok()
            .map(|v| v.parse().expect("RFA_REPS must be an integer"))
            .unwrap_or(3)
            .max(1);
        BenchConfig { n, reps }
    }

    /// Largest group-count exponent to sweep (paper sweeps to `log2 n`).
    pub fn max_group_exp(&self) -> u32 {
        self.n.trailing_zeros().max(4)
    }
}

fn env_flag(name: &str) -> bool {
    matches!(
        std::env::var(name).as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    )
}

/// Times `f` (after one warm-up run) and returns the minimum duration over
/// the configured repetitions.
pub fn time_min<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    f(); // warm-up: page in data, JIT branch predictors, etc.
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

/// Times a *set* of alternative arms under the same noise environment:
/// every arm is warmed once, then the arms run round-robin `reps` times
/// and each keeps its minimum.
///
/// Back-to-back [`time_min`] calls hand each arm a *different* slice of
/// machine noise — frequency ramps, interrupts, a neighbouring tenant —
/// and at smoke scale (tens of microseconds per iteration) that slice,
/// not the code, can order the arms. Round-robin interleaving samples
/// every arm across the same windows, so ratios between the returned
/// minima are meaningful even on a noisy single-core host. Use this
/// whenever the reported number is a *ratio of arms* rather than an
/// absolute.
pub fn time_min_set<const K: usize>(reps: usize, mut arms: [&mut dyn FnMut(); K]) -> [Duration; K] {
    for f in arms.iter_mut() {
        f(); // warm-up: page in data, warm branch predictors and caches
    }
    let mut best = [Duration::MAX; K];
    for _ in 0..reps {
        for (b, f) in best.iter_mut().zip(arms.iter_mut()) {
            let t = Instant::now();
            f();
            *b = (*b).min(t.elapsed());
        }
    }
    best
}

/// Wall-clock time per element in nanoseconds. For single-threaded runs
/// this is the paper's "CPU time per element" (§VI-A: `T · P / n` with
/// `P = 1`); for pool runs it is wall clock, so serial ÷ parallel reads
/// directly as speedup.
pub fn ns_per_elem(d: Duration, n: usize) -> f64 {
    d.as_secs_f64() * 1e9 / n as f64
}

/// A result table that renders aligned text (paper-style) and writes CSV.
pub struct ResultTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        println!("\n=== {} ===", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", joined.join("  "));
        };
        line(&self.header);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Writes the table as `results/<id>.csv` (relative to the workspace
    /// root when run via `cargo bench`).
    pub fn write_csv(&self, id: &str) {
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_err() {
            return; // benches must not fail on read-only filesystems
        }
        let path = dir.join(format!("{id}.csv"));
        let Ok(mut f) = fs::File::create(&path) else {
            return;
        };
        let _ = writeln!(f, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(f, "{}", row.join(","));
        }
        println!("  [csv] {}", path.display());
    }
}

fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.join("results")
}

/// Formats a float with 2 decimals (table cells).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float in scientific notation with one decimal (Table II
/// style: `1.7e-10`).
pub fn sci(v: impl Display + Into<f64>) -> String {
    let v: f64 = v.into();
    if v == 0.0 {
        return "0".to_string();
    }
    format!("{v:.1e}")
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// The scan-pipeline entry of the smoke artifact: fused vs materializing
/// serial ns/elem for one representative engine query.
#[derive(Clone, Copy, Debug)]
pub struct ScanSmoke {
    /// Which query was measured (e.g. "tpch_q1 repro<d,4> buffered").
    pub query: &'static str,
    pub fused_ns_per_elem: f64,
    pub materializing_ns_per_elem: f64,
}

/// The hash-grouping entry of the smoke artifact: the same fused
/// plan-layer aggregation grouped through the hash arm
/// (`AggHashTable::upsert_batch` group-id assignment) vs dense dictionary
/// ids, serial ns/elem.
#[derive(Clone, Copy, Debug)]
pub struct HashGroupSmoke {
    /// Which query/config was measured.
    pub query: &'static str,
    /// Distinct group keys in the input.
    pub groups: usize,
    pub hash_ns_per_elem: f64,
    pub dense_ns_per_elem: f64,
    /// The same aggregation over a sparse, identity-hostile key domain
    /// (keys strided far apart) probed with `HashKind::Multiplicative` —
    /// the non-dense-domain configuration the paper's §VI-A "real hash
    /// function" remark covers.
    pub sparse_ns_per_elem: f64,
}

/// The SQL-frontend entry of the smoke artifact: the same query executed
/// from its SQL text (parse → resolve → lower → execute, every
/// iteration) vs through the prebuilt plan. The gap is the whole
/// frontend overhead; the two arms are cross-asserted bit-identical.
#[derive(Clone, Copy, Debug)]
pub struct SqlSmoke {
    /// Which query was measured (e.g. "tpch_q6 serial repro<d,4> buffered").
    pub query: &'static str,
    pub sql_ns_per_elem: f64,
    /// The same SQL text through a warm [`rfa_engine::PlanCache`]: the
    /// per-iteration cost collapses to one cache lookup + plan execution,
    /// so this should sit within a few percent of `builder_ns_per_elem`.
    pub cached_ns_per_elem: f64,
    pub builder_ns_per_elem: f64,
}

/// The SIMD-dispatch entry of the smoke artifact: the summation kernel
/// and the Q6 fused scan under forced-scalar vs. runtime-dispatched
/// (AVX2 where supported) execution. All arms are bit-identical; the
/// ratios are pure performance.
#[derive(Clone, Copy, Debug)]
pub struct SimdSmoke {
    /// The dispatch level the auto policy resolved to ("scalar"/"avx2").
    pub level: &'static str,
    /// Scalar extraction cascade (`ReproSum::add` per value), ns/elem.
    pub add_slice_cascade_ns_per_elem: f64,
    /// Portable lane-array block kernel (autovectorized), ns/elem.
    pub add_slice_portable_ns_per_elem: f64,
    /// Dispatched block kernel (explicit AVX2 when active), ns/elem.
    pub add_slice_dispatched_ns_per_elem: f64,
    /// Q6 fused scan, forced `RFA_SIMD=scalar` equivalent, ns/elem.
    pub q6_scalar_ns_per_elem: f64,
    /// Q6 fused scan under the dispatched kernels, ns/elem.
    pub q6_dispatched_ns_per_elem: f64,
}

/// Everything one `bench_smoke.json` records: serial vs pool wall-clock
/// ns/elem for a representative configuration, plus the optional scan,
/// hash-group and SQL-frontend comparisons.
#[derive(Clone, Debug)]
pub struct BenchSmoke<'a> {
    pub bench: &'a str,
    pub config: &'a str,
    pub n: usize,
    pub pool_threads: usize,
    pub serial_ns_per_elem: f64,
    pub parallel_ns_per_elem: f64,
    pub scan: Option<ScanSmoke>,
    pub hash_group: Option<HashGroupSmoke>,
    pub sql: Option<SqlSmoke>,
    pub simd: Option<SimdSmoke>,
}

/// Writes `results/bench_smoke.json` — the CI smoke artifact. The
/// acceptance shape: `speedup` ≥ ~1 on multicore hosts,
/// `scan.fused_ns_per_elem` ≤ `scan.materializing_ns_per_elem` at laptop
/// scale, `hash_group.hash_over_dense` a small constant (the probe
/// cost), and `sql.sql_over_builder` ≈ 1 (parse/lower overhead is a
/// per-query constant, invisible at any realistic scan size).
pub fn write_bench_smoke(smoke: &BenchSmoke) {
    let BenchSmoke {
        bench,
        config,
        n,
        pool_threads,
        serial_ns_per_elem,
        parallel_ns_per_elem,
        scan,
        hash_group,
        sql,
        simd,
    } = *smoke;
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return; // benches must not fail on read-only filesystems
    }
    let path = dir.join("bench_smoke.json");
    let speedup = if parallel_ns_per_elem > 0.0 {
        serial_ns_per_elem / parallel_ns_per_elem
    } else {
        0.0
    };
    let scan_json = match scan {
        None => String::new(),
        Some(s) => {
            let ratio = if s.materializing_ns_per_elem > 0.0 {
                s.fused_ns_per_elem / s.materializing_ns_per_elem
            } else {
                0.0
            };
            format!(
                ",\n  \"scan\": {{\n    \"query\": \"{}\",\n    \
                 \"fused_ns_per_elem\": {:.3},\n    \
                 \"materializing_ns_per_elem\": {:.3},\n    \
                 \"fused_over_materializing\": {ratio:.3}\n  }}",
                s.query, s.fused_ns_per_elem, s.materializing_ns_per_elem
            )
        }
    };
    let hash_json = match hash_group {
        None => String::new(),
        Some(h) => {
            let ratio = if h.dense_ns_per_elem > 0.0 {
                h.hash_ns_per_elem / h.dense_ns_per_elem
            } else {
                0.0
            };
            let sparse_ratio = if h.dense_ns_per_elem > 0.0 {
                h.sparse_ns_per_elem / h.dense_ns_per_elem
            } else {
                0.0
            };
            format!(
                ",\n  \"hash_group\": {{\n    \"query\": \"{}\",\n    \
                 \"groups\": {},\n    \
                 \"hash_ns_per_elem\": {:.3},\n    \
                 \"dense_ns_per_elem\": {:.3},\n    \
                 \"hash_over_dense\": {ratio:.3},\n    \
                 \"sparse_ns_per_elem\": {:.3},\n    \
                 \"sparse_over_dense\": {sparse_ratio:.3}\n  }}",
                h.query, h.groups, h.hash_ns_per_elem, h.dense_ns_per_elem, h.sparse_ns_per_elem
            )
        }
    };
    let sql_json = match sql {
        None => String::new(),
        Some(s) => {
            let ratio = if s.builder_ns_per_elem > 0.0 {
                s.sql_ns_per_elem / s.builder_ns_per_elem
            } else {
                0.0
            };
            let cached_ratio = if s.builder_ns_per_elem > 0.0 {
                s.cached_ns_per_elem / s.builder_ns_per_elem
            } else {
                0.0
            };
            format!(
                ",\n  \"sql\": {{\n    \"query\": \"{}\",\n    \
                 \"sql_ns_per_elem\": {:.3},\n    \
                 \"cached_ns_per_elem\": {:.3},\n    \
                 \"builder_ns_per_elem\": {:.3},\n    \
                 \"sql_over_builder\": {ratio:.3},\n    \
                 \"cached_over_builder\": {cached_ratio:.3}\n  }}",
                s.query, s.sql_ns_per_elem, s.cached_ns_per_elem, s.builder_ns_per_elem
            )
        }
    };
    let simd_json = match simd {
        None => String::new(),
        Some(s) => {
            let add_speedup = if s.add_slice_dispatched_ns_per_elem > 0.0 {
                s.add_slice_cascade_ns_per_elem / s.add_slice_dispatched_ns_per_elem
            } else {
                0.0
            };
            let q6_speedup = if s.q6_dispatched_ns_per_elem > 0.0 {
                s.q6_scalar_ns_per_elem / s.q6_dispatched_ns_per_elem
            } else {
                0.0
            };
            format!(
                ",\n  \"simd\": {{\n    \"level\": \"{}\",\n    \
                 \"add_slice_cascade_ns_per_elem\": {:.3},\n    \
                 \"add_slice_portable_ns_per_elem\": {:.3},\n    \
                 \"add_slice_dispatched_ns_per_elem\": {:.3},\n    \
                 \"add_slice_dispatch_speedup\": {add_speedup:.3},\n    \
                 \"q6_scalar_ns_per_elem\": {:.3},\n    \
                 \"q6_dispatched_ns_per_elem\": {:.3},\n    \
                 \"q6_dispatch_speedup\": {q6_speedup:.3}\n  }}",
                s.level,
                s.add_slice_cascade_ns_per_elem,
                s.add_slice_portable_ns_per_elem,
                s.add_slice_dispatched_ns_per_elem,
                s.q6_scalar_ns_per_elem,
                s.q6_dispatched_ns_per_elem
            )
        }
    };
    let json = format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"config\": \"{config}\",\n  \"n\": {n},\n  \
         \"pool_threads\": {pool_threads},\n  \"serial_ns_per_elem\": {serial_ns_per_elem:.3},\n  \
         \"parallel_ns_per_elem\": {parallel_ns_per_elem:.3},\n  \"speedup\": {speedup:.3}\
         {scan_json}{hash_json}{sql_json}{simd_json}\n}}\n"
    );
    if fs::write(&path, json).is_ok() {
        println!("  [json] {}", path.display());
    }
}

/// The compressed-scan entry of the smoke artifact: TPC-H Q1 and Q6
/// over dictionary/RLE-encoded columns vs the same (physically
/// identically ordered) plain columns, serial ns/elem. The bench
/// cross-asserts the two arms bit-identical before this is written.
#[derive(Clone, Copy, Debug)]
pub struct CompressionSmoke {
    /// Table rows scanned.
    pub n: usize,
    /// Which storage the Q1 encoded arm used (e.g. "flags Rle, rest Dict").
    pub q1_encodings: &'static str,
    pub q1_plain_ns_per_elem: f64,
    pub q1_encoded_ns_per_elem: f64,
    /// Which storage the Q6 encoded arm used.
    pub q6_encodings: &'static str,
    pub q6_plain_ns_per_elem: f64,
    pub q6_encoded_ns_per_elem: f64,
    /// Which storages the agg-pushdown arms used (encoded SUM inputs
    /// aggregated algebraically: one k·v deposit per RLE run, per-code
    /// counts flushed once per touched dictionary entry per batch).
    pub agg_encodings: &'static str,
    /// Unfiltered SUM+COUNT over the run-sorted RLE input vs plain.
    pub agg_rle_plain_ns_per_elem: f64,
    pub agg_rle_encoded_ns_per_elem: f64,
    /// Same plan over the u8-coded dictionary input (dbgen order).
    pub agg_dict_plain_ns_per_elem: f64,
    pub agg_dict_encoded_ns_per_elem: f64,
    /// Same plan over the u16-coded dictionary input (10k entries —
    /// larger than a batch's selection, so the executor's payoff gate
    /// keeps per-row deposits and this measures pure decode overhead).
    pub agg_dict16_plain_ns_per_elem: f64,
    pub agg_dict16_encoded_ns_per_elem: f64,
}

/// Merges the `compression` object into `results/bench_smoke.json`,
/// keeping whatever the other benches wrote and splicing *before* any
/// `server` member (which `write_server_smoke` keeps as the trailing
/// entry). The artifact stays valid JSON whether or not the file, or
/// previous `compression`/`server` entries, existed.
pub fn write_compression_smoke(smoke: &CompressionSmoke) {
    let CompressionSmoke {
        n,
        q1_encodings,
        q1_plain_ns_per_elem,
        q1_encoded_ns_per_elem,
        q6_encodings,
        q6_plain_ns_per_elem,
        q6_encoded_ns_per_elem,
        agg_encodings,
        agg_rle_plain_ns_per_elem,
        agg_rle_encoded_ns_per_elem,
        agg_dict_plain_ns_per_elem,
        agg_dict_encoded_ns_per_elem,
        agg_dict16_plain_ns_per_elem,
        agg_dict16_encoded_ns_per_elem,
    } = *smoke;
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return; // benches must not fail on read-only filesystems
    }
    let path = dir.join("bench_smoke.json");
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let q1_ratio = ratio(q1_encoded_ns_per_elem, q1_plain_ns_per_elem);
    let q6_ratio = ratio(q6_encoded_ns_per_elem, q6_plain_ns_per_elem);
    // The agg arms report plain/encoded — the *speedup* of the algebraic
    // deposit path, the number the ISSUE's >= 1.5x target reads.
    let agg_rle_speedup = ratio(agg_rle_plain_ns_per_elem, agg_rle_encoded_ns_per_elem);
    let agg_dict_speedup = ratio(agg_dict_plain_ns_per_elem, agg_dict_encoded_ns_per_elem);
    let agg_dict16_speedup = ratio(agg_dict16_plain_ns_per_elem, agg_dict16_encoded_ns_per_elem);
    let compression_json = format!(
        "  \"compression\": {{\n    \"n\": {n},\n    \
         \"q1_encodings\": \"{q1_encodings}\",\n    \
         \"q1_plain_ns_per_elem\": {q1_plain_ns_per_elem:.3},\n    \
         \"q1_encoded_ns_per_elem\": {q1_encoded_ns_per_elem:.3},\n    \
         \"q1_encoded_over_plain\": {q1_ratio:.3},\n    \
         \"q6_encodings\": \"{q6_encodings}\",\n    \
         \"q6_plain_ns_per_elem\": {q6_plain_ns_per_elem:.3},\n    \
         \"q6_encoded_ns_per_elem\": {q6_encoded_ns_per_elem:.3},\n    \
         \"q6_encoded_over_plain\": {q6_ratio:.3},\n    \
         \"agg_encodings\": \"{agg_encodings}\",\n    \
         \"agg_rle_plain_ns_per_elem\": {agg_rle_plain_ns_per_elem:.3},\n    \
         \"agg_rle_encoded_ns_per_elem\": {agg_rle_encoded_ns_per_elem:.3},\n    \
         \"agg_rle_speedup\": {agg_rle_speedup:.3},\n    \
         \"agg_dict_plain_ns_per_elem\": {agg_dict_plain_ns_per_elem:.3},\n    \
         \"agg_dict_encoded_ns_per_elem\": {agg_dict_encoded_ns_per_elem:.3},\n    \
         \"agg_dict_speedup\": {agg_dict_speedup:.3},\n    \
         \"agg_dict16_plain_ns_per_elem\": {agg_dict16_plain_ns_per_elem:.3},\n    \
         \"agg_dict16_encoded_ns_per_elem\": {agg_dict16_encoded_ns_per_elem:.3},\n    \
         \"agg_dict16_speedup\": {agg_dict16_speedup:.3},\n    \
         \"bit_identical\": true\n  }}"
    );
    // Splice into the existing artifact: keep any trailing `server`
    // member, drop any previous `compression` member, re-insert ours
    // between the figure entries and `server`.
    let existing = fs::read_to_string(&path).unwrap_or_default();
    let (body, server) = match existing.find(",\n  \"server\": {") {
        Some(i) => {
            let tail = existing[i + 2..].trim_end();
            let tail = tail.strip_suffix('}').unwrap_or(tail).trim_end();
            (existing[..i].to_string(), Some(tail.to_string()))
        }
        None => (
            existing
                .trim_end()
                .trim_end_matches('}')
                .trim_end()
                .to_string(),
            None,
        ),
    };
    let body = match body.find(",\n  \"compression\": {") {
        Some(i) => body[..i].to_string(),
        None => body,
    };
    let mut json = if body.is_empty() || !existing.trim_start().starts_with('{') {
        format!("{{\n{compression_json}")
    } else {
        format!("{body},\n{compression_json}")
    };
    if let Some(server) = server {
        json.push_str(",\n");
        json.push_str(&server);
    }
    json.push_str("\n}\n");
    if fs::write(&path, json).is_ok() {
        println!("  [json] {}", path.display());
    }
}

/// The query-service entry of the smoke artifact: a load-generator run
/// of N concurrent client sessions against `rfa_server`, mixed
/// Q1/Q6/Q15, with cross-concurrency bit-identity asserted by the bench
/// before this record is written.
#[derive(Clone, Copy, Debug)]
pub struct ServerSmoke {
    /// Table rows served.
    pub n: usize,
    /// Concurrent client sessions in the loaded arm.
    pub clients: usize,
    /// Queries each session issued.
    pub queries_per_client: usize,
    /// Completed queries per second, single session.
    pub qps_1_client: f64,
    /// Completed queries per second, `clients` sessions.
    pub qps_loaded: f64,
    /// Active fault menu ("none" outside the chaos leg).
    pub faults: &'static str,
    /// Queries that completed (both arms).
    pub completed: u64,
    /// Typed `Overloaded` rejections.
    pub rejected_overload: u64,
    /// Typed deadline expiries.
    pub deadline_expired: u64,
    /// Worker panics isolated to their query.
    pub panics_isolated: u64,
}

/// Merges the `server` object into `results/bench_smoke.json`, keeping
/// whatever the figure benches already wrote. The artifact stays valid
/// JSON whether or not the file, or a previous `server` entry, existed.
pub fn write_server_smoke(smoke: &ServerSmoke) {
    let ServerSmoke {
        n,
        clients,
        queries_per_client,
        qps_1_client,
        qps_loaded,
        faults,
        completed,
        rejected_overload,
        deadline_expired,
        panics_isolated,
    } = *smoke;
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return; // benches must not fail on read-only filesystems
    }
    let path = dir.join("bench_smoke.json");
    let scaleup = if qps_1_client > 0.0 {
        qps_loaded / qps_1_client
    } else {
        0.0
    };
    let server_json = format!(
        "  \"server\": {{\n    \"n\": {n},\n    \"clients\": {clients},\n    \
         \"queries_per_client\": {queries_per_client},\n    \
         \"qps_1_client\": {qps_1_client:.1},\n    \
         \"qps_loaded\": {qps_loaded:.1},\n    \
         \"client_scaleup\": {scaleup:.3},\n    \
         \"faults\": \"{faults}\",\n    \
         \"completed\": {completed},\n    \
         \"rejected_overload\": {rejected_overload},\n    \
         \"deadline_expired\": {deadline_expired},\n    \
         \"panics_isolated\": {panics_isolated},\n    \
         \"bit_identical\": true\n  }}"
    );
    // Splice into the existing artifact: drop any previous `server`
    // entry (always the trailing member), then re-append.
    let existing = fs::read_to_string(&path).unwrap_or_default();
    let body = match existing.find(",\n  \"server\": {") {
        Some(i) => existing[..i].to_string(),
        None => existing
            .trim_end()
            .trim_end_matches('}')
            .trim_end()
            .to_string(),
    };
    let json = if body.is_empty() || !existing.trim_start().starts_with('{') {
        format!("{{\n{server_json}\n}}\n")
    } else {
        format!("{body},\n{server_json}\n}}\n")
    };
    if fs::write(&path, json).is_ok() {
        println!("  [json] {}", path.display());
    }
}

/// Shared measurement drivers for the GROUPBY benches.
pub mod runner {
    use rfa_agg::{partition_and_aggregate, AggFn, GroupByConfig};

    /// Times PARTITIONANDAGGREGATE single-threaded (the paper normalizes
    /// to CPU time per element, so thread count cancels out) and returns
    /// ns/element, including partitioning passes.
    pub fn groupby_ns<F>(
        f: &F,
        keys: &[u32],
        values: &[F::Input],
        depth: u32,
        groups_hint: usize,
        reps: usize,
    ) -> f64
    where
        F: AggFn,
        F::Output: Send,
    {
        groupby_ns_threads(f, keys, values, depth, groups_hint, reps, 1)
    }

    /// Times PARTITIONANDAGGREGATE with the given worker-thread budget
    /// (above 1, morsels run on the global work-stealing pool) and returns
    /// *wall-clock* ns/element — so serial ÷ parallel is the speedup.
    pub fn groupby_ns_threads<F>(
        f: &F,
        keys: &[u32],
        values: &[F::Input],
        depth: u32,
        groups_hint: usize,
        reps: usize,
        threads: usize,
    ) -> f64
    where
        F: AggFn,
        F::Output: Send,
    {
        let cfg = GroupByConfig {
            depth,
            groups_hint,
            threads,
            ..Default::default()
        };
        let d = crate::time_min(reps, || {
            std::hint::black_box(partition_and_aggregate(f, keys, values, &cfg));
        });
        crate::ns_per_elem(d, keys.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ns_per_elem_math() {
        let d = Duration::from_micros(1000); // 1 ms
        assert!((ns_per_elem(d, 1_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_rendering_does_not_panic() {
        let mut t = ResultTable::new("test", &["a", "bb"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.print();
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.000_000_17), "1.7e-7");
        assert_eq!(sci(1234.0), "1.2e3");
        assert_eq!(sci(0.0), "0");
    }
}
